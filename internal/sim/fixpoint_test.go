package sim

import (
	"math"
	"testing"

	"sam/internal/custard"
	"sam/internal/lang"
	"sam/internal/tensor"
)

// spmvProgram compiles the y = M·x relaxation step every fixpoint test
// iterates.
func spmvProgram(t *testing.T) *Program {
	t.Helper()
	g, err := custard.Compile(lang.MustParse("y(i) = M(i,j) * x(j)"), nil, lang.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProgram(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// ring builds the n-node directed ring's column-stochastic matrix (each node
// links only to its successor) and a unit vector at node 0.
func ring(n int) (*tensor.COO, *tensor.COO) {
	m := tensor.NewCOO("M", n, n)
	for j := 0; j < n; j++ {
		m.Append(1, int64((j+1)%n), int64(j))
	}
	x := tensor.NewCOO("x", n)
	x.Append(1, 0)
	return m, x
}

func TestFixpointValidate(t *testing.T) {
	good := Fixpoint{Var: "x", MaxIters: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Fixpoint{
		{MaxIters: 10}, // no var
		{Var: "x"},     // no iteration budget
		{Var: "x", MaxIters: maxFixpointIters + 1},
		{Var: "x", MaxIters: 10, Tol: -1},
		{Var: "x", MaxIters: 10, Tol: math.NaN()},
		{Var: "x", MaxIters: 10, Mode: "warp"},
		{Var: "x", MaxIters: 10, Mode: FixpointPageRank, Damping: 1.5},
		{Var: "x", MaxIters: 10, Mode: FixpointPageRank, Damping: -0.1},
	}
	for i, fx := range bad {
		if err := fx.Validate(); err == nil {
			t.Errorf("bad spec %d (%+v) validated", i, fx)
		}
	}
}

// TestFixpointApply checks each update rule against its closed form.
func TestFixpointApply(t *testing.T) {
	x := tensor.NewCOO("x", 4)
	x.Append(1, 0)
	x.Append(2, 2)
	y := tensor.NewCOO("y", 4)
	y.Append(3, 1)
	y.Append(5, 2)

	// power: x' = y; delta = |0-1| + |3-0| + |5-2| = 7.
	next, delta, err := Fixpoint{Var: "x", MaxIters: 1}.Apply(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if delta != 7 {
		t.Fatalf("power delta = %v, want 7", delta)
	}
	if next.NNZ() != 2 || next.Pts[0].Val != 3 || next.Pts[1].Val != 5 {
		t.Fatalf("power next = %+v", next.Pts)
	}
	if !next.SortedStrict() {
		t.Fatal("Apply output not strictly sorted")
	}

	// pagerank: x'_i = 0.5·y_i + 0.5/4, dense.
	next, _, err = Fixpoint{Var: "x", MaxIters: 1, Mode: FixpointPageRank, Damping: 0.5}.Apply(y, x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.125, 1.625, 2.625, 0.125}
	if next.NNZ() != 4 {
		t.Fatalf("pagerank next has %d points, want dense 4", next.NNZ())
	}
	for i, p := range next.Pts {
		if p.Val != want[i] {
			t.Fatalf("pagerank next[%d] = %v, want %v", i, p.Val, want[i])
		}
	}

	// reach: saturate where either x or y is nonzero.
	next, delta, err = Fixpoint{Var: "x", MaxIters: 1, Mode: FixpointReach}.Apply(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if next.NNZ() != 3 { // nodes 0, 1, 2
		t.Fatalf("reach next = %+v", next.Pts)
	}
	for _, p := range next.Pts {
		if p.Val != 1 {
			t.Fatalf("reach value %v, want saturated 1", p.Val)
		}
	}
	// Fixed point: applying again changes nothing.
	if _, delta, _ = (Fixpoint{Var: "x", MaxIters: 1, Mode: FixpointReach}).Apply(y, next); delta != 0 {
		t.Fatalf("reach re-apply delta = %v, want 0", delta)
	}

	// Shape errors.
	m := tensor.NewCOO("m", 2, 2)
	if _, _, err := (Fixpoint{Var: "x", MaxIters: 1}).Apply(y, m); err == nil {
		t.Fatal("order-2 state accepted")
	}
	short := tensor.NewCOO("y", 3)
	if _, _, err := (Fixpoint{Var: "x", MaxIters: 1}).Apply(short, x); err == nil {
		t.Fatal("mismatched output length accepted")
	}
}

// TestRunFixpointPower iterates x' = M·x on a ring: the unit mass rotates
// one node per iteration, so after k iterations it sits at node k mod n.
func TestRunFixpointPower(t *testing.T) {
	p := spmvProgram(t)
	m, x := ring(5)
	inputs := map[string]*tensor.COO{"M": m, "x": x}

	res, err := RunFixpoint(p, inputs, Fixpoint{Var: "x", MaxIters: 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 7 || res.Converged {
		t.Fatalf("iterations %d converged %v, want 7 and false (tol disabled)", res.Iterations, res.Converged)
	}
	if len(res.Deltas) != 7 || res.Cycles == 0 {
		t.Fatalf("deltas %d cycles %d", len(res.Deltas), res.Cycles)
	}
	if res.Output.NNZ() != 1 || res.Output.Pts[0].Crd[0] != 2 || res.Output.Pts[0].Val != 1 {
		t.Fatalf("mass at %+v after 7 steps on a 5-ring, want node 2", res.Output.Pts)
	}
	// The caller's inputs map must be untouched.
	if inputs["x"] != x || x.NNZ() != 1 || x.Pts[0].Crd[0] != 0 {
		t.Fatal("RunFixpoint mutated the caller's inputs")
	}
}

// TestRunFixpointConvergence checks Tol stops iteration: on the ring, power
// iteration from the uniform vector is already at its fixpoint.
func TestRunFixpointConvergence(t *testing.T) {
	p := spmvProgram(t)
	m, _ := ring(4)
	x := tensor.NewCOO("x", 4)
	for i := 0; i < 4; i++ {
		x.Append(0.25, int64(i))
	}
	res, err := RunFixpoint(p, map[string]*tensor.COO{"M": m, "x": x},
		Fixpoint{Var: "x", MaxIters: 50, Tol: 1e-12}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 1 {
		t.Fatalf("iterations %d converged %v, want immediate convergence", res.Iterations, res.Converged)
	}
}

// TestRunFixpointReachBFS runs frontier-less BFS on a small chain graph:
// reachability from node 0 saturates in diameter iterations.
func TestRunFixpointReachBFS(t *testing.T) {
	// Edges 0→1→2→3 (adjacency: A(i,j)=1 for edge j→i).
	a := tensor.NewCOO("M", 4, 4)
	a.Append(1, 1, 0)
	a.Append(1, 2, 1)
	a.Append(1, 3, 2)
	x := tensor.NewCOO("x", 4)
	x.Append(1, 0)

	res, err := RunFixpoint(spmvProgram(t), map[string]*tensor.COO{"M": a, "x": x},
		Fixpoint{Var: "x", MaxIters: 20, Tol: 1e-9, Mode: FixpointReach}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("BFS did not converge within the chain diameter")
	}
	if res.Output.NNZ() != 4 {
		t.Fatalf("reached %d of 4 chain nodes: %+v", res.Output.NNZ(), res.Output.Pts)
	}
}

// TestRunFixpointMatchesManualLoop cross-checks the driver against the same
// iterations done by hand with Apply — including on the compiled engine, and
// with pagerank's damped update.
func TestRunFixpointMatchesManualLoop(t *testing.T) {
	for _, engine := range []EngineKind{EngineEvent, EngineComp} {
		p := spmvProgram(t)
		m, x0 := ring(6)
		fx := Fixpoint{Var: "x", MaxIters: 9, Mode: FixpointPageRank}
		opt := Options{Engine: engine}

		res, err := RunFixpoint(p, map[string]*tensor.COO{"M": m, "x": x0}, fx, opt)
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}

		x := x0
		for it := 0; it < 9; it++ {
			r, err := p.Run(map[string]*tensor.COO{"M": m, "x": x}, Options{Engine: engine})
			if err != nil {
				t.Fatalf("engine %s manual iteration %d: %v", engine, it, err)
			}
			next, delta, err := fx.Apply(r.Output, x)
			if err != nil {
				t.Fatal(err)
			}
			if delta != res.Deltas[it] {
				t.Fatalf("engine %s: delta[%d] = %v, driver reported %v", engine, it, delta, res.Deltas[it])
			}
			x = next
		}
		if err := tensor.Equal(res.Output, x, 0); err != nil {
			t.Fatalf("engine %s: driver output differs from manual loop: %v", engine, err)
		}
	}
}

// TestRunFixpointErrors covers driver-level validation.
func TestRunFixpointErrors(t *testing.T) {
	p := spmvProgram(t)
	m, x := ring(3)
	if _, err := RunFixpoint(p, map[string]*tensor.COO{"M": m, "x": x},
		Fixpoint{Var: "z", MaxIters: 3}, Options{}); err == nil {
		t.Fatal("missing state input accepted")
	}
	if _, err := RunFixpoint(p, map[string]*tensor.COO{"M": m, "x": x},
		Fixpoint{Var: "M", MaxIters: 3}, Options{}); err == nil {
		t.Fatal("order-2 state input accepted")
	}
	if _, err := RunFixpoint(p, map[string]*tensor.COO{"M": m, "x": x},
		Fixpoint{Var: "x"}, Options{}); err == nil {
		t.Fatal("zero max_iters accepted")
	}
}
