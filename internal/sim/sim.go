// Package sim executes SAM dataflow graphs on the cycle-approximate engine.
//
// It reproduces the paper's simulator model (Section 6): graphs are fully
// pipelined (every primitive produces at most one token per port per cycle),
// input queues are unbounded by default, memory reads take one cycle, and
// memories are pre-initialized. The engine binds input tensors to the
// graph's operands (permuting mode orders and building the per-level storage
// the formats request), runs the net to completion, gathers per-stream token
// statistics, and assembles the output tensor from the level writers.
//
// Four engines implement the Engine interface: the default event-driven
// ready-set scheduler, the naive tick-all reference loop (bit-identical
// results, kept for differential testing), the goroutine-per-block
// functional executor from internal/flow, and the compiled co-iteration
// engine from internal/comp (bit-identical outputs, no cycle model; graphs
// it cannot lower fall back to the event engine). Select one with
// Options.Engine; run many graph+input bindings concurrently with
// RunBatch.
package sim

import (
	"fmt"

	"sam/internal/bind"
	"sam/internal/core"
	"sam/internal/fiber"
	"sam/internal/graph"
	"sam/internal/lang"
	"sam/internal/obs"
	"sam/internal/tensor"
)

// Options configures a simulation.
type Options struct {
	// MaxCycles aborts runaway simulations; 0 means a generous default.
	MaxCycles int
	// QueueCap bounds every inter-block queue, modeling finite buffering
	// with backpressure; 0 means unbounded (the paper's default).
	QueueCap int
	// Engine selects the executor; the zero value is the event-driven
	// cycle-accurate engine (EngineEvent).
	Engine EngineKind
	// Workers bounds RunBatch's worker pool; 0 means GOMAXPROCS.
	Workers int
	// Trace, when non-nil, records phase spans (bind, run, assemble, …)
	// into the given recorder; the engine's spans come back in
	// Result.Phases. Nil (the default) disables tracing at zero cost: every
	// instrumentation hook on a nil trace is an allocation-free no-op.
	// Being a pointer keeps Options comparable, which batch grouping relies
	// on; traced runs simply never coalesce with other requests.
	Trace *obs.Trace
	// BindCache, when non-nil, memoizes built operand storage across runs
	// (see bind.Cache). Serving supplies its named tensor store here so warm
	// stored-tensor references skip fibertree construction entirely; the
	// cache decides which sources it manages, so inline operands pass
	// through unmemoized. Implementations are pointer-shaped, keeping
	// Options comparable for batch grouping — runs sharing one cache still
	// coalesce.
	BindCache bind.Cache
}

// Result carries the outcome of a simulation.
type Result struct {
	// Cycles is the simulated execution time.
	Cycles int
	// Output is the computed tensor in the left-hand-side mode order.
	Output *tensor.COO
	// Streams holds per-stream statistics keyed by "node/port" labels, for
	// the Figure 14 token-breakdown study.
	Streams map[string]*core.StreamStats
	// Engine names the engine that actually executed the run. It differs
	// from Options.Engine only when the compiled engine (EngineComp) fell
	// back to the event engine for a graph outside its block set; serving
	// counts those fallbacks per engine.
	Engine EngineKind
	// Phases holds the engine's phase spans for this run when
	// Options.Trace was set: operand binding, net wiring or compiled-step
	// setup, the run itself (with per-lane children in the compiled
	// engine's goroutine mode), and output assembly. Nil when tracing was
	// off. Parent indices are local to this slice.
	Phases []obs.SpanData
}

// Run compiles nothing — it executes an already-compiled graph against the
// given inputs (COO tensors keyed by source tensor name; order-0 tensors are
// scalars) on the engine Options.Engine selects.
func Run(g *graph.Graph, inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	eng, err := EngineFor(opt.Engine)
	if err != nil {
		return nil, err
	}
	return eng.Run(g, inputs, opt)
}

// builder is the run-time half of a simulation: it materializes one net —
// queues, fan-outs, block instances, writers — for one input binding of a
// Program. All graph traversal and validation happened at Program build
// time; the builder only allocates and wires.
type builder struct {
	p      *Program
	opt    Options
	net    *core.Net
	arena  *core.VecArena
	bound  map[string]*fiber.Tensor // operand name -> storage
	dims   []int                    // output level dims
	queues []*core.Queue            // one per graph edge, program order
	outs   []*core.Out              // one per fan-out group, program order
	crdWr  map[int]*core.CrdWriter  // output level -> writer
	valsWr *core.ValsWriter
	bvWr   map[int]*core.BVWriter
	vecWr  *core.VecValsWriter
}

type portKey struct {
	node int
	port string
}

func newBuilder(p *Program, inputs map[string]*tensor.COO, opt Options) (*builder, error) {
	b := &builder{
		p: p, opt: opt, net: &core.Net{}, arena: &core.VecArena{},
		crdWr: map[int]*core.CrdWriter{}, bvWr: map[int]*core.BVWriter{},
	}
	var err error
	if b.bound, err = p.plan.BindTraced(inputs, opt.BindCache, opt.Trace); err != nil {
		return nil, err
	}
	wire := opt.Trace.Start("wire")
	defer wire.End()
	if b.dims, err = p.plan.OutputDims(inputs); err != nil {
		return nil, err
	}
	// One queue per edge, one Out per fan-out group, as the program planned.
	b.queues = make([]*core.Queue, len(p.g.Edges))
	for i := range p.g.Edges {
		if opt.QueueCap > 0 {
			b.queues[i] = b.net.NewBoundedQueue(p.labels[i], opt.QueueCap)
		} else {
			b.queues[i] = b.net.NewQueue(p.labels[i])
		}
	}
	b.outs = make([]*core.Out, len(p.groups))
	for gi, members := range p.groups {
		o := core.NewOut()
		for _, ei := range members {
			o.Attach(b.queues[ei])
		}
		b.outs[gi] = o
	}
	for _, n := range p.g.Nodes {
		blk, err := b.instantiate(n)
		if err != nil {
			return nil, err
		}
		if blk != nil {
			b.net.Add(blk)
		}
	}
	return b, nil
}

// in returns the queue feeding an input port.
func (b *builder) in(n *graph.Node, port string) (*core.Queue, error) {
	i, ok := b.p.inEdge[portKey{n.ID, port}]
	if !ok {
		return nil, fmt.Errorf("sim: node %q input port %q unconnected", n.Label, port)
	}
	return b.queues[i], nil
}

// out returns the output port (empty, token-discarding, if unconnected).
func (b *builder) out(n *graph.Node, port string) *core.Out {
	if gi, ok := b.p.groupOf[portKey{n.ID, port}]; ok {
		return b.outs[gi]
	}
	return core.NewOut()
}

// streams records each monitored stream's statistics into a Result: the
// first queue of every fan-out group, keyed by its producer label.
func (b *builder) streams(res *Result) {
	for _, members := range b.p.groups {
		ei := members[0]
		res.Streams[b.p.labels[ei]] = &b.queues[ei].Stats
	}
}

// drvQueues fetches a deep serializer's per-lane rotation-driver queues.
func (b *builder) drvQueues(n *graph.Node) ([]*core.Queue, error) {
	drv := make([]*core.Queue, n.Ways)
	for i := range drv {
		var err error
		if drv[i], err = b.in(n, fmt.Sprintf("drv%d", i)); err != nil {
			return nil, err
		}
	}
	return drv, nil
}

// level fetches a bound operand's storage level.
func (b *builder) level(n *graph.Node, operand string, lvl int) (fiber.Level, error) {
	t, ok := b.bound[operand]
	if !ok {
		return nil, fmt.Errorf("sim: node %q references unbound operand %q", n.Label, operand)
	}
	if lvl >= len(t.Levels) {
		return nil, fmt.Errorf("sim: node %q references level %d of order-%d operand %q", n.Label, lvl, len(t.Levels), operand)
	}
	return t.Levels[lvl], nil
}

func aluOp(op lang.Op) core.ALUOp {
	switch op {
	case lang.Mul:
		return core.OpMul
	case lang.Add:
		return core.OpAdd
	default:
		return core.OpSub
	}
}

func (b *builder) instantiate(n *graph.Node) (core.Block, error) {
	switch n.Kind {
	case graph.Root:
		return core.NewRootSource(n.Label, b.out(n, "ref")), nil
	case graph.Scanner:
		lvl, err := b.level(n, n.Tensor, n.Level)
		if err != nil {
			return nil, err
		}
		in, err := b.in(n, "ref")
		if err != nil {
			return nil, err
		}
		return core.NewScanner(n.Label, lvl, in, b.out(n, "crd"), b.out(n, "ref")), nil
	case graph.BVScanner:
		lvl, err := b.level(n, n.Tensor, n.Level)
		if err != nil {
			return nil, err
		}
		bv, ok := lvl.(*fiber.BitvectorLevel)
		if !ok {
			return nil, fmt.Errorf("sim: node %q scans %v level as bitvector", n.Label, lvl.Kind())
		}
		in, err := b.in(n, "ref")
		if err != nil {
			return nil, err
		}
		return core.NewBVScanner(n.Label, bv, in, b.out(n, "bv"), b.out(n, "ref")), nil
	case graph.Repeat:
		crd, err := b.in(n, "crd")
		if err != nil {
			return nil, err
		}
		ref, err := b.in(n, "ref")
		if err != nil {
			return nil, err
		}
		return core.NewRepeater(n.Label, crd, ref, b.out(n, "ref")), nil
	case graph.Intersect, graph.Union:
		crds := make([]*core.Queue, n.Ways)
		refs := make([]*core.Queue, n.Ways)
		refOuts := make([]*core.Out, n.Ways)
		for i := 0; i < n.Ways; i++ {
			var err error
			if crds[i], err = b.in(n, fmt.Sprintf("crd%d", i)); err != nil {
				return nil, err
			}
			if refs[i], err = b.in(n, fmt.Sprintf("ref%d", i)); err != nil {
				return nil, err
			}
			refOuts[i] = b.out(n, fmt.Sprintf("ref%d", i))
		}
		if n.Kind == graph.Intersect {
			return core.NewIntersect(n.Label, crds, refs, b.out(n, "crd"), refOuts), nil
		}
		return core.NewUnion(n.Label, crds, refs, b.out(n, "crd"), refOuts), nil
	case graph.GallopIntersect:
		la, err := b.level(n, n.Tensor, n.Level)
		if err != nil {
			return nil, err
		}
		lb, err := b.level(n, n.TensorB, n.LevelB)
		if err != nil {
			return nil, err
		}
		ra, err := b.in(n, "ref0")
		if err != nil {
			return nil, err
		}
		rb, err := b.in(n, "ref1")
		if err != nil {
			return nil, err
		}
		return core.NewGallopIntersect(n.Label, la, lb, ra, rb, b.out(n, "crd"), b.out(n, "ref0"), b.out(n, "ref1")), nil
	case graph.Locate:
		lvl, err := b.level(n, n.Tensor, n.Level)
		if err != nil {
			return nil, err
		}
		crd, err := b.in(n, "crd")
		if err != nil {
			return nil, err
		}
		ref, err := b.in(n, "ref")
		if err != nil {
			return nil, err
		}
		fib, err := b.in(n, "fiber")
		if err != nil {
			return nil, err
		}
		return core.NewLocator(n.Label, lvl, crd, ref, fib, b.out(n, "crd"), b.out(n, "ref"), b.out(n, "loc")), nil
	case graph.Array:
		t, ok := b.bound[n.Tensor]
		if !ok {
			return nil, fmt.Errorf("sim: node %q references unbound operand %q", n.Label, n.Tensor)
		}
		in, err := b.in(n, "ref")
		if err != nil {
			return nil, err
		}
		return core.NewArrayLoad(n.Label, t.Vals, in, b.out(n, "val")), nil
	case graph.ALU:
		a, err := b.in(n, "a")
		if err != nil {
			return nil, err
		}
		bb, err := b.in(n, "b")
		if err != nil {
			return nil, err
		}
		return core.NewALU(n.Label, aluOp(n.Op), a, bb, b.out(n, "val")), nil
	case graph.Reduce:
		switch n.RedN {
		case 0:
			in, err := b.in(n, "val")
			if err != nil {
				return nil, err
			}
			return core.NewScalarReducer(n.Label, in, b.out(n, "val")), nil
		case 1:
			crd, err := b.in(n, "crd")
			if err != nil {
				return nil, err
			}
			val, err := b.in(n, "val")
			if err != nil {
				return nil, err
			}
			return core.NewVectorReducer(n.Label, crd, val, b.out(n, "crd"), b.out(n, "val")), nil
		case 2:
			c0, err := b.in(n, "crd0")
			if err != nil {
				return nil, err
			}
			c1, err := b.in(n, "crd1")
			if err != nil {
				return nil, err
			}
			val, err := b.in(n, "val")
			if err != nil {
				return nil, err
			}
			return core.NewMatrixReducer(n.Label, c0, c1, val, b.out(n, "crd0"), b.out(n, "crd1"), b.out(n, "val")), nil
		}
		// General n-dimensional reducer.
		crds := make([]*core.Queue, n.RedN)
		crdOuts := make([]*core.Out, n.RedN)
		for q := 0; q < n.RedN; q++ {
			var err error
			if crds[q], err = b.in(n, fmt.Sprintf("crd%d", q)); err != nil {
				return nil, err
			}
			crdOuts[q] = b.out(n, fmt.Sprintf("crd%d", q))
		}
		val, err := b.in(n, "val")
		if err != nil {
			return nil, err
		}
		return core.NewTensorReducer(n.Label, n.RedN, crds, val, crdOuts, b.out(n, "val")), nil
	case graph.CrdDrop:
		outer, err := b.in(n, "outer")
		if err != nil {
			return nil, err
		}
		if n.DropVal {
			val, err := b.in(n, "val")
			if err != nil {
				return nil, err
			}
			return core.NewCrdDropVal(n.Label, outer, val, b.out(n, "outer"), b.out(n, "val")), nil
		}
		inner, err := b.in(n, "inner")
		if err != nil {
			return nil, err
		}
		return core.NewCrdDropCrd(n.Label, outer, inner, b.out(n, "outer"), b.out(n, "inner")), nil
	case graph.CrdWriter:
		in, err := b.in(n, "crd")
		if err != nil {
			return nil, err
		}
		w := core.NewCrdWriter(n.Label, n.Format, b.dims[n.OutLevel], n.OutLevel, in)
		b.crdWr[n.OutLevel] = w
		return w, nil
	case graph.ValsWriter:
		in, err := b.in(n, "val")
		if err != nil {
			return nil, err
		}
		w := core.NewValsWriter(n.Label, in)
		b.valsWr = w
		return w, nil
	case graph.BVIntersect:
		qs := map[string]*core.Queue{}
		for _, p := range []string{"bv0", "ref0", "bv1", "ref1"} {
			q, err := b.in(n, p)
			if err != nil {
				return nil, err
			}
			qs[p] = q
		}
		return core.NewBVIntersect(n.Label, qs["bv0"], qs["ref0"], qs["bv1"], qs["ref1"],
			b.out(n, "bv"), b.out(n, "mask0"), b.out(n, "base0"), b.out(n, "mask1"), b.out(n, "base1")), nil
	case graph.VecLoad:
		t, ok := b.bound[n.Tensor]
		if !ok {
			return nil, fmt.Errorf("sim: node %q references unbound operand %q", n.Label, n.Tensor)
		}
		bv, err := b.in(n, "bv")
		if err != nil {
			return nil, err
		}
		mask, err := b.in(n, "mask")
		if err != nil {
			return nil, err
		}
		base, err := b.in(n, "base")
		if err != nil {
			return nil, err
		}
		return core.NewVecLoad(n.Label, t.Vals, b.arena, bv, mask, base, b.out(n, "val")), nil
	case graph.VecALU:
		a, err := b.in(n, "a")
		if err != nil {
			return nil, err
		}
		bb, err := b.in(n, "b")
		if err != nil {
			return nil, err
		}
		return core.NewVecALU(n.Label, aluOp(n.Op), b.arena, a, bb, b.out(n, "val")), nil
	case graph.BVExpand:
		bv, err := b.in(n, "bv")
		if err != nil {
			return nil, err
		}
		mask, err := b.in(n, "mask")
		if err != nil {
			return nil, err
		}
		base, err := b.in(n, "base")
		if err != nil {
			return nil, err
		}
		return core.NewBVExpand(n.Label, bv, mask, base, b.out(n, "ref")), nil
	case graph.BVConvert:
		in, err := b.in(n, "crd")
		if err != nil {
			return nil, err
		}
		return core.NewBVConvert(n.Label, n.Level, in, b.out(n, "bv")), nil
	case graph.BVWriter:
		in, err := b.in(n, "bv")
		if err != nil {
			return nil, err
		}
		w := core.NewBVWriter(n.Label, b.dims[n.OutLevel], in)
		b.bvWr[n.OutLevel] = w
		return w, nil
	case graph.Parallelize:
		in, err := b.in(n, "in")
		if err != nil {
			return nil, err
		}
		outs := make([]*core.Out, n.Ways)
		for i := range outs {
			outs[i] = b.out(n, fmt.Sprintf("out%d", i))
		}
		return core.NewParallelizer(n.Label, n.Level, in, outs), nil
	case graph.Serialize:
		ins := make([]*core.Queue, n.Ways)
		for i := range ins {
			var err error
			if ins[i], err = b.in(n, fmt.Sprintf("in%d", i)); err != nil {
				return nil, err
			}
		}
		if n.Level < 0 {
			return core.NewSerializer(n.Label, n.Level, ins, b.out(n, "out")), nil
		}
		drv, err := b.drvQueues(n)
		if err != nil {
			return nil, err
		}
		return core.NewDrivenSerializer(n.Label, n.Level, ins, drv, b.out(n, "out")), nil
	case graph.SerializePair:
		crds := make([]*core.Queue, n.Ways)
		vals := make([]*core.Queue, n.Ways)
		for i := 0; i < n.Ways; i++ {
			var err error
			if crds[i], err = b.in(n, fmt.Sprintf("crd%d", i)); err != nil {
				return nil, err
			}
			if vals[i], err = b.in(n, fmt.Sprintf("val%d", i)); err != nil {
				return nil, err
			}
		}
		if n.Level < 0 {
			return core.NewPairSerializer(n.Label, n.Level, crds, vals, b.out(n, "crd"), b.out(n, "val")), nil
		}
		drv, err := b.drvQueues(n)
		if err != nil {
			return nil, err
		}
		return core.NewDrivenPairSerializer(n.Label, n.Level, crds, vals, drv, b.out(n, "crd"), b.out(n, "val")), nil
	case graph.LaneReduce:
		var crds [2][]*core.Queue
		var vals [2]*core.Queue
		for s := 0; s < 2; s++ {
			crds[s] = make([]*core.Queue, n.RedN)
			for q := 0; q < n.RedN; q++ {
				var err error
				if crds[s][q], err = b.in(n, fmt.Sprintf("crd%d_%d", q, s)); err != nil {
					return nil, err
				}
			}
			var err error
			if vals[s], err = b.in(n, fmt.Sprintf("val%d", s)); err != nil {
				return nil, err
			}
		}
		crdOuts := make([]*core.Out, n.RedN)
		for q := range crdOuts {
			crdOuts[q] = b.out(n, fmt.Sprintf("crd%d", q))
		}
		return core.NewLaneCombine(n.Label, n.RedN, crds, vals, crdOuts, b.out(n, "val")), nil
	case graph.VecValsWriter:
		bv, err := b.in(n, "bv")
		if err != nil {
			return nil, err
		}
		val, err := b.in(n, "val")
		if err != nil {
			return nil, err
		}
		w := core.NewVecValsWriter(n.Label, b.arena, bv, val)
		b.vecWr = w
		return w, nil
	}
	return nil, fmt.Errorf("sim: block kind %v not instantiable", n.Kind)
}

// assemble builds the output tensor from the writers, in the loop order the
// graph produced it, then permutes to the user's left-hand-side order.
func (b *builder) assemble() (*tensor.COO, error) {
	g := b.p.g
	order := len(g.OutputVars)
	ft := &fiber.Tensor{Name: g.OutputTensor, Dims: b.dims}
	if b.valsWr != nil {
		ft.Vals = b.valsWr.Vals()
	} else if b.vecWr != nil {
		ft.Vals = b.vecWr.Vals()
	} else {
		return nil, fmt.Errorf("sim: graph %q has no value writer", g.Name)
	}
	for lvl := 0; lvl < order; lvl++ {
		if w, ok := b.crdWr[lvl]; ok {
			ft.Levels = append(ft.Levels, w.Level())
			continue
		}
		if w, ok := b.bvWr[lvl]; ok {
			ft.Levels = append(ft.Levels, fiber.NewBitvectorLevel(b.dims[lvl], w.Words()))
			continue
		}
		return nil, fmt.Errorf("sim: no writer produced output level %d", lvl)
	}
	// Optimized graphs bypass coordinate-mode droppers, so an all-empty
	// level can arrive with a fiber count the writer could not infer from
	// its stream alone; rebuild it from the parent before validating. For
	// unoptimized graphs that shape is a writer/engine bug, and Validate
	// stays the tripwire.
	if g.OptLevel > 0 {
		ft.NormalizeEmptyLevels()
	}
	if err := ft.Validate(); err != nil {
		return nil, fmt.Errorf("sim: assembled output invalid: %w", err)
	}
	out := tensor.FromFiber(ft)
	// Permute from loop order to the declared left-hand-side order.
	perm := make([]int, order)
	for i, v := range g.LHSVars {
		found := false
		for j, u := range g.OutputVars {
			if u == v {
				perm[i] = j
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("sim: output variable %q missing from graph metadata", v)
		}
	}
	return out.Permute(g.OutputTensor, perm)
}
