package sim

import (
	"math/rand"
	"strings"
	"testing"

	"sam/internal/custard"
	"sam/internal/fiber"
	"sam/internal/lang"
	"sam/internal/tensor"
)

// TestCompEngineRuns checks the compiled engine end to end through the
// public sim entry points: identical output to the event engine, Engine
// recorded on the result, zero cycles.
func TestCompEngineRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := lang.MustParse("X(i,j) = B(i,k) * C(k,j)")
	g, err := custard.Compile(e, nil, lang.Schedule{LoopOrder: []string{"i", "k", "j"}})
	if err != nil {
		t.Fatal(err)
	}
	b := tensor.UniformRandom("B", rng, 80, 30, 20)
	c := tensor.UniformRandom("C", rng, 80, 20, 25)
	tensor.QuantizeInts(rng, 7, b, c)
	inputs := map[string]*tensor.COO{"B": b, "C": c}

	ref, err := Run(g, inputs, Options{Engine: EngineEvent})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, inputs, Options{Engine: EngineComp})
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine != EngineComp {
		t.Errorf("Result.Engine = %q, want %q", got.Engine, EngineComp)
	}
	if got.Cycles != 0 {
		t.Errorf("comp engine reported %d cycles, want 0", got.Cycles)
	}
	if err := tensor.IdenticalBits(ref.Output, got.Output); err != nil {
		t.Errorf("comp output differs from event: %v", err)
	}
}

// TestCompEngineFallsBackOnBitvector checks the fallback contract: a graph
// outside the compiled block set (the bitvector pipeline) still runs under
// Options{Engine: EngineComp}, on the event engine, with the fallback
// recorded in Result.Engine — and CheckEngine accepts it up front.
func TestCompEngineFallsBackOnBitvector(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	e := lang.MustParse("x(i) = b(i) * c(i)")
	g, err := custard.CompileBitvector(e, lang.Formats{
		"b": lang.Uniform(1, fiber.Bitvector),
		"c": lang.Uniform(1, fiber.Bitvector),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEngine(EngineComp, g); err != nil {
		t.Fatalf("CheckEngine(comp) rejected a fallback-eligible graph: %v", err)
	}
	b := tensor.UniformRandom("b", rng, 40, 200)
	c := tensor.UniformRandom("c", rng, 40, 200)
	inputs := map[string]*tensor.COO{"b": b, "c": c}

	ref, err := Run(g, inputs, Options{Engine: EngineEvent})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, inputs, Options{Engine: EngineComp})
	if err != nil {
		t.Fatalf("comp engine did not fall back: %v", err)
	}
	if got.Engine != EngineEvent {
		t.Errorf("fallback Result.Engine = %q, want %q", got.Engine, EngineEvent)
	}
	if got.Cycles != ref.Cycles {
		t.Errorf("fallback cycles = %d, want the event engine's %d", got.Cycles, ref.Cycles)
	}
	if err := tensor.IdenticalBits(ref.Output, got.Output); err != nil {
		t.Errorf("fallback output differs from event: %v", err)
	}
}

// TestCompProgramReuse checks the lazy comp lowering is cached on the
// Program and concurrent-safe: repeated and parallel RunProgram calls return
// identical outputs.
func TestCompProgramReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e := lang.MustParse("x(i) = B(i,j) * c(j)")
	g, err := custard.Compile(e, nil, lang.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProgram(g)
	if err != nil {
		t.Fatal(err)
	}
	b := tensor.UniformRandom("B", rng, 60, 20, 15)
	c := tensor.UniformRandom("c", rng, 10, 15)
	tensor.QuantizeInts(rng, 7, b, c)
	inputs := map[string]*tensor.COO{"B": b, "c": c}

	first, err := p.Run(inputs, Options{Engine: EngineComp})
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			res, err := p.Run(inputs, Options{Engine: EngineComp})
			if err == nil {
				err = tensor.IdenticalBits(first.Output, res.Output)
			}
			results <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-results; err != nil {
			t.Errorf("concurrent comp run %d: %v", i, err)
		}
	}
}

// TestEngineRegistry checks the registered engine list and the unknown-
// engine error: user-facing tools print this list, so it must name every
// engine including comp.
func TestEngineRegistry(t *testing.T) {
	kinds := Engines()
	want := []EngineKind{EngineEvent, EngineNaive, EngineFlow, EngineComp, EngineByte}
	if len(kinds) != len(want) {
		t.Fatalf("Engines() = %v, want %v", kinds, want)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Errorf("Engines()[%d] = %q, want %q", i, kinds[i], k)
		}
		if _, err := EngineFor(k); err != nil {
			t.Errorf("EngineFor(%q): %v", k, err)
		}
	}
	_, err := EngineFor("bogus")
	if err == nil {
		t.Fatal("EngineFor(bogus) = nil error")
	}
	for _, k := range want {
		if !strings.Contains(err.Error(), string(k)) {
			t.Errorf("unknown-engine error %q does not list %q", err, k)
		}
	}
}
