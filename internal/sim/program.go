package sim

import (
	"fmt"
	"sync"

	"sam/internal/bind"
	"sam/internal/comp"
	"sam/internal/graph"
	"sam/internal/prog"
	"sam/internal/tensor"
)

// Program is a compiled SAM graph plus every piece of execution state that
// does not depend on the input tensors: the validated wiring (each input
// port's feeding edge, each output port's fan-out group), the per-edge
// stream labels, the operand binding plan, and the graph's canonical
// fingerprint. Building a Program once and calling Run per request drops
// per-request work to input binding and net construction — the split the
// compiled-program cache in internal/serve is built on.
//
// A Program is immutable after NewProgram and safe for concurrent Run calls;
// every run builds its own net and queues.
type Program struct {
	g    *graph.Graph
	fp   string
	plan *bind.Plan
	// flowErr caches CheckEngine(EngineFlow, g): the support check is
	// input-independent, so it is paid once here, not per request.
	flowErr error

	// The compiled (internal/comp) lowering is built lazily on the first
	// comp-engine run and reused for the program's lifetime, so cached
	// programs in the serving layer amortize lowering exactly like the
	// wiring plan. compErr caches lowering rejection (unsupported blocks),
	// which triggers the event-engine fallback.
	compOnce sync.Once
	compProg *comp.Program
	compErr  error

	// The byte-artifact form (internal/prog) is built lazily on the first
	// byte-engine run or Artifact call: the graph is lowered, encoded to
	// the portable byte format, and decoded back, so the interpreter
	// genuinely executes the decoded bytes — the same object a cross-
	// process load would produce. Artifact-backed programs (see
	// NewProgramFromArtifact) have byteProg pre-set and no graph.
	byteOnce sync.Once
	byteProg *prog.Program
	byteErr  error

	// labels holds each edge's producer-side "node/port" stream label.
	labels []string
	// inEdge maps each input port to the index of the edge feeding it.
	inEdge map[portKey]int
	// groupOf maps each driven output port to its fan-out group; groups
	// lists each group's member edge indices (the first is the monitored
	// stream for statistics).
	groupOf map[portKey]int
	groups  [][]int
}

// NewProgram validates a compiled graph and precomputes its execution plan.
func NewProgram(g *graph.Graph) (*Program, error) {
	if g == nil {
		return nil, fmt.Errorf("sim: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p := &Program{
		g: g, fp: g.Fingerprint(), plan: bind.NewPlan(g),
		labels:  make([]string, len(g.Edges)),
		inEdge:  make(map[portKey]int, len(g.Edges)),
		groupOf: map[portKey]int{},
	}
	p.flowErr = CheckEngine(EngineFlow, g)
	for i, e := range g.Edges {
		p.labels[i] = fmt.Sprintf("%s/%s", g.Nodes[e.From].Label, e.FromPort)
		p.inEdge[portKey{e.To, e.ToPort}] = i
		k := portKey{e.From, e.FromPort}
		gi, ok := p.groupOf[k]
		if !ok {
			gi = len(p.groups)
			p.groups = append(p.groups, nil)
			p.groupOf[k] = gi
		}
		p.groups[gi] = append(p.groups[gi], i)
	}
	return p, nil
}

// NewProgramFromArtifact wraps a loaded byte artifact as a Program with no
// source graph. The artifact's embedded metadata supplies the fingerprint
// and the binding plan, and both functional engines are available: the byte
// interpreter runs the decoded program directly and the comp engine reuses
// its materialized closures (they are the same object — the artifact format
// is the serialized form of comp's lowering). The cycle engines and the
// goroutine executor need the graph itself and report a descriptive error
// through CheckEngine/Run.
func NewProgramFromArtifact(bp *prog.Program) (*Program, error) {
	if bp == nil {
		return nil, fmt.Errorf("sim: nil artifact")
	}
	p := &Program{
		fp:   bp.Fingerprint(),
		plan: bp.Plan(),
		flowErr: fmt.Errorf("sim: engine %q cannot run artifact-backed program %q: the goroutine executor needs the source graph (artifact engines: %q, %q)",
			EngineFlow, bp.Name(), EngineByte, EngineComp),
		byteProg: bp,
		compProg: bp.Compiled(),
	}
	p.byteOnce.Do(func() {})
	p.compOnce.Do(func() {})
	return p, nil
}

// Graph returns the compiled graph the program executes, or nil for
// artifact-backed programs (see NewProgramFromArtifact).
func (p *Program) Graph() *graph.Graph { return p.g }

// name returns the program's graph name for error messages, whichever form
// backs it.
func (p *Program) name() string {
	if p.g != nil {
		return p.g.Name
	}
	if p.byteProg != nil {
		return p.byteProg.Name()
	}
	return "<program>"
}

// compProgram returns the program's compiled-engine lowering, building it on
// first use. An error means the graph is outside the compiled block set and
// the comp engine must fall back to the event engine.
func (p *Program) compProgram() (*comp.Program, error) {
	p.compOnce.Do(func() {
		p.compProg, p.compErr = comp.Compile(p.g)
	})
	return p.compProg, p.compErr
}

// byteProgram returns the program's byte-artifact form, building it on
// first use via a full encode→decode round trip. An error means the graph
// is outside the compiled block set and the byte engine must fall back to
// the event engine, exactly like compProgram.
func (p *Program) byteProgram() (*prog.Program, error) {
	p.byteOnce.Do(func() {
		enc, err := prog.Encode(p.g)
		if err != nil {
			p.byteErr = err
			return
		}
		p.byteProg, p.byteErr = prog.Decode(enc)
	})
	return p.byteProg, p.byteErr
}

// Artifact returns the program's portable byte-artifact form (building it
// on first use), the unit the serving disk cache and samsim -emit persist.
// Graphs outside the compiled block set have no artifact form and error.
func (p *Program) Artifact() (*prog.Program, error) {
	return p.byteProgram()
}

// Fingerprint returns the graph's canonical fingerprint (see
// graph.Graph.Fingerprint), the program's cache identity.
func (p *Program) Fingerprint() string { return p.fp }

// CheckEngine reports whether the engine can execute this program. It is
// the precomputed form of the package-level CheckEngine: no graph scan per
// call, so request hot paths can validate per-request engine choices
// against a cached program for free.
func (p *Program) CheckEngine(kind EngineKind) error {
	if _, err := EngineFor(kind); err != nil {
		return err
	}
	if kind == EngineFlow {
		return p.flowErr
	}
	if p.g == nil {
		switch kind {
		case EngineByte, EngineComp:
		default:
			return fmt.Errorf("sim: engine %q cannot run an artifact-backed program: cycle engines need the source graph (artifact engines: %q, %q)",
				kind, EngineByte, EngineComp)
		}
	}
	return nil
}

// Run executes the program against one input binding on the engine
// opt.Engine selects. It is equivalent to sim.Run on the program's graph but
// skips validation and plan construction, which Run pays on every call.
func (p *Program) Run(inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	eng, err := EngineFor(opt.Engine)
	if err != nil {
		return nil, err
	}
	return eng.RunProgram(p, inputs, opt)
}
