package sim

import (
	"fmt"
	"sync"

	"sam/internal/bind"
	"sam/internal/comp"
	"sam/internal/graph"
	"sam/internal/tensor"
)

// Program is a compiled SAM graph plus every piece of execution state that
// does not depend on the input tensors: the validated wiring (each input
// port's feeding edge, each output port's fan-out group), the per-edge
// stream labels, the operand binding plan, and the graph's canonical
// fingerprint. Building a Program once and calling Run per request drops
// per-request work to input binding and net construction — the split the
// compiled-program cache in internal/serve is built on.
//
// A Program is immutable after NewProgram and safe for concurrent Run calls;
// every run builds its own net and queues.
type Program struct {
	g    *graph.Graph
	fp   string
	plan *bind.Plan
	// flowErr caches CheckEngine(EngineFlow, g): the support check is
	// input-independent, so it is paid once here, not per request.
	flowErr error

	// The compiled (internal/comp) lowering is built lazily on the first
	// comp-engine run and reused for the program's lifetime, so cached
	// programs in the serving layer amortize lowering exactly like the
	// wiring plan. compErr caches lowering rejection (unsupported blocks),
	// which triggers the event-engine fallback.
	compOnce sync.Once
	compProg *comp.Program
	compErr  error

	// labels holds each edge's producer-side "node/port" stream label.
	labels []string
	// inEdge maps each input port to the index of the edge feeding it.
	inEdge map[portKey]int
	// groupOf maps each driven output port to its fan-out group; groups
	// lists each group's member edge indices (the first is the monitored
	// stream for statistics).
	groupOf map[portKey]int
	groups  [][]int
}

// NewProgram validates a compiled graph and precomputes its execution plan.
func NewProgram(g *graph.Graph) (*Program, error) {
	if g == nil {
		return nil, fmt.Errorf("sim: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p := &Program{
		g: g, fp: g.Fingerprint(), plan: bind.NewPlan(g),
		labels:  make([]string, len(g.Edges)),
		inEdge:  make(map[portKey]int, len(g.Edges)),
		groupOf: map[portKey]int{},
	}
	p.flowErr = CheckEngine(EngineFlow, g)
	for i, e := range g.Edges {
		p.labels[i] = fmt.Sprintf("%s/%s", g.Nodes[e.From].Label, e.FromPort)
		p.inEdge[portKey{e.To, e.ToPort}] = i
		k := portKey{e.From, e.FromPort}
		gi, ok := p.groupOf[k]
		if !ok {
			gi = len(p.groups)
			p.groups = append(p.groups, nil)
			p.groupOf[k] = gi
		}
		p.groups[gi] = append(p.groups[gi], i)
	}
	return p, nil
}

// Graph returns the compiled graph the program executes.
func (p *Program) Graph() *graph.Graph { return p.g }

// compProgram returns the program's compiled-engine lowering, building it on
// first use. An error means the graph is outside the compiled block set and
// the comp engine must fall back to the event engine.
func (p *Program) compProgram() (*comp.Program, error) {
	p.compOnce.Do(func() {
		p.compProg, p.compErr = comp.Compile(p.g)
	})
	return p.compProg, p.compErr
}

// Fingerprint returns the graph's canonical fingerprint (see
// graph.Graph.Fingerprint), the program's cache identity.
func (p *Program) Fingerprint() string { return p.fp }

// CheckEngine reports whether the engine can execute this program. It is
// the precomputed form of the package-level CheckEngine: no graph scan per
// call, so request hot paths can validate per-request engine choices
// against a cached program for free.
func (p *Program) CheckEngine(kind EngineKind) error {
	if _, err := EngineFor(kind); err != nil {
		return err
	}
	if kind == EngineFlow {
		return p.flowErr
	}
	return nil
}

// Run executes the program against one input binding on the engine
// opt.Engine selects. It is equivalent to sim.Run on the program's graph but
// skips validation and plan construction, which Run pays on every call.
func (p *Program) Run(inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	eng, err := EngineFor(opt.Engine)
	if err != nil {
		return nil, err
	}
	return eng.RunProgram(p, inputs, opt)
}
