package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sam/internal/custard"
	"sam/internal/fiber"
	"sam/internal/lang"
	"sam/internal/tensor"
)

// randExpr generates a random well-formed tensor index notation statement
// plus matching random inputs: 1-3 operands of order 0-3 over a small
// variable pool, combined with * and +, with reduction variables arising
// naturally from variables absent on the left-hand side.
func randExpr(r *rand.Rand) (string, map[string]*tensor.COO) {
	pool := []string{"i", "j", "k", "l"}
	dims := map[string]int{"i": 9, "j": 8, "k": 7, "l": 6}

	nOps := r.Intn(3) + 1
	type opnd struct {
		name string
		vars []string
	}
	used := map[string]bool{}
	var ops []opnd
	for t := 0; t < nOps; t++ {
		order := r.Intn(3)
		if t == 0 && order == 0 {
			order = 1 // ensure at least one indexed operand
		}
		perm := r.Perm(len(pool))
		vars := make([]string, 0, order)
		for _, p := range perm[:order] {
			vars = append(vars, pool[p])
		}
		for _, v := range vars {
			used[v] = true
		}
		ops = append(ops, opnd{name: fmt.Sprintf("T%d", t), vars: vars})
	}

	// Output variables: a random nonempty subset of the used variables
	// (empty means a scalar result, also legal).
	var allUsed []string
	for _, v := range pool {
		if used[v] {
			allUsed = append(allUsed, v)
		}
	}
	var outVars []string
	for _, v := range allUsed {
		if r.Intn(2) == 0 {
			outVars = append(outVars, v)
		}
	}

	terms := make([]string, len(ops))
	for i, o := range ops {
		if len(o.vars) == 0 {
			terms[i] = o.name
		} else {
			terms[i] = o.name + "(" + strings.Join(o.vars, ",") + ")"
		}
	}
	// Combine with a random operator sequence; keep one connected
	// expression so every variable's scope is well defined.
	rhs := terms[0]
	for i := 1; i < len(terms); i++ {
		op := "*"
		if r.Intn(3) == 0 {
			op = "+"
		}
		rhs = rhs + " " + op + " " + terms[i]
	}
	lhs := "X"
	if len(outVars) > 0 {
		lhs += "(" + strings.Join(outVars, ",") + ")"
	}
	expr := lhs + " = " + rhs

	// Additions require both sides to carry the output variables; rather
	// than constrain generation, filter at the validation step (the caller
	// retries on compile errors for structurally unsupported statements).
	inputs := map[string]*tensor.COO{}
	for _, o := range ops {
		if len(o.vars) == 0 {
			s := tensor.NewCOO(o.name)
			s.Append(r.Float64() + 0.5)
			inputs[o.name] = s
			continue
		}
		ds := make([]int, len(o.vars))
		total := 1
		for i, v := range o.vars {
			ds[i] = dims[v]
			total *= ds[i]
		}
		nnz := r.Intn(total/2) + 1
		inputs[o.name] = tensor.UniformRandom(o.name, r, nnz, ds...)
	}
	return expr, inputs
}

// TestFuzzRandomExpressions compiles and simulates randomly generated
// statements, comparing every successful compilation against the gold
// evaluator. Statements the compiler legitimately rejects (e.g. reducer
// dimensions beyond n=2 for an adversarial loop order) are skipped, but a
// minimum number of statements must execute.
func TestFuzzRandomExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	executed := 0
	for trial := 0; trial < 400; trial++ {
		expr, inputs := randExpr(r)
		e, err := lang.Parse(expr)
		if err != nil {
			continue // e.g. output variable missing from the right side
		}
		g, err := custard.Compile(e, nil, lang.Schedule{})
		if err != nil {
			continue
		}
		res, err := Run(g, inputs, Options{})
		if err != nil {
			t.Fatalf("trial %d %q: simulate: %v", trial, expr, err)
		}
		want, err := lang.Gold(e, inputs)
		if err != nil {
			t.Fatalf("trial %d %q: gold: %v", trial, expr, err)
		}
		if err := tensor.Equal(res.Output, want, 1e-6); err != nil {
			t.Fatalf("trial %d %q: mismatch: %v", trial, expr, err)
		}
		executed++
	}
	if executed < 150 {
		t.Fatalf("only %d/400 random statements executed; generator or compiler too restrictive", executed)
	}
	t.Logf("executed %d/400 random statements", executed)
}

// TestFuzzEngineEquivalence cross-checks the event-driven scheduler against
// the naive tick-all loop on randomly generated statements: identical cycle
// counts and byte-identical outputs, under both unbounded and bounded
// queues (bounded queues exercise the backpressure wakeup path).
func TestFuzzEngineEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	executed := 0
	for trial := 0; trial < 150; trial++ {
		expr, inputs := randExpr(r)
		e, err := lang.Parse(expr)
		if err != nil {
			continue
		}
		g, err := custard.Compile(e, nil, lang.Schedule{})
		if err != nil {
			continue
		}
		caps := []int{0, 2, 7}
		cap := caps[r.Intn(len(caps))]
		naive, errNaive := Run(g, inputs, Options{Engine: EngineNaive, QueueCap: cap})
		event, errEvent := Run(g, inputs, Options{Engine: EngineEvent, QueueCap: cap})
		if errNaive != nil || errEvent != nil {
			// Tiny bounded queues can genuinely deadlock a graph (real
			// backpressure cycles); the engines must agree on the failure.
			if (errNaive == nil) != (errEvent == nil) {
				t.Fatalf("trial %d %q cap=%d: engines disagree: naive=%v event=%v", trial, expr, cap, errNaive, errEvent)
			}
			if errNaive.Error() != errEvent.Error() {
				t.Fatalf("trial %d %q cap=%d: errors differ:\n naive: %v\n event: %v", trial, expr, cap, errNaive, errEvent)
			}
			executed++
			continue
		}
		if event.Cycles != naive.Cycles {
			t.Fatalf("trial %d %q cap=%d: cycles event %d vs naive %d", trial, expr, cap, event.Cycles, naive.Cycles)
		}
		if err := tensor.Equal(event.Output, naive.Output, 0); err != nil {
			t.Fatalf("trial %d %q cap=%d: outputs differ: %v", trial, expr, cap, err)
		}
		executed++
	}
	if executed < 50 {
		t.Fatalf("only %d/150 random statements executed", executed)
	}
	t.Logf("cross-checked %d/150 random statements", executed)
}

// TestFuzzRandomFormats runs a fixed expression battery under random format
// assignments.
func TestFuzzRandomFormats(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	exprs := []string{
		"x(i) = B(i,j) * c(j)",
		"X(i,j) = B(i,k) * C(k,j)",
		"X(i,j) = B(i,j) + C(i,j)",
		"X(i,j) = B(i,j,k) * c(k)",
	}
	kinds := []fiber.Format{fiber.Compressed, fiber.Dense, fiber.LinkedList}
	for trial := 0; trial < 60; trial++ {
		expr := exprs[r.Intn(len(exprs))]
		e := lang.MustParse(expr)
		formats := lang.Formats{}
		inputs := map[string]*tensor.COO{}
		for _, a := range e.Accesses() {
			if _, ok := inputs[a.Tensor]; ok {
				continue
			}
			lv := make([]fiber.Format, len(a.Idx))
			for i := range lv {
				lv[i] = kinds[r.Intn(len(kinds))]
			}
			formats[a.Tensor] = lang.Format{Levels: lv}
			ds := make([]int, len(a.Idx))
			total := 1
			for i := range ds {
				ds[i] = r.Intn(8) + 3
				total *= ds[i]
			}
			inputs[a.Tensor] = tensor.UniformRandom(a.Tensor, r, r.Intn(total/2)+1, ds...)
		}
		// Shared variables must agree on dimensions; rebuild with a common
		// dimension map instead.
		dims := map[string]int{}
		ok := true
		for _, a := range e.Accesses() {
			for m, v := range a.Idx {
				if d, seen := dims[v]; seen && d != inputs[a.Tensor].Dims[m] {
					ok = false
				} else {
					dims[v] = inputs[a.Tensor].Dims[m]
				}
			}
		}
		if !ok {
			for _, a := range e.Accesses() {
				ds := make([]int, len(a.Idx))
				total := 1
				for m, v := range a.Idx {
					ds[m] = dims[v]
					total *= ds[m]
				}
				inputs[a.Tensor] = tensor.UniformRandom(a.Tensor, r, r.Intn(total/2)+1, ds...)
			}
		}
		g, err := custard.Compile(e, formats, lang.Schedule{})
		if err != nil {
			t.Fatalf("trial %d %q formats %v: %v", trial, expr, formats, err)
		}
		res, err := Run(g, inputs, Options{})
		if err != nil {
			t.Fatalf("trial %d %q: %v", trial, expr, err)
		}
		want, err := lang.Gold(e, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := tensor.Equal(res.Output, want, 1e-6); err != nil {
			t.Fatalf("trial %d %q: %v", trial, expr, err)
		}
	}
}

// TestFuzzRandomLoopOrders runs the fixed battery under random loop-order
// permutations, exercising vector, matrix and higher-dimensional reducers.
func TestFuzzRandomLoopOrders(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	dims := map[string]int{"i": 8, "j": 7, "k": 6, "l": 5}
	exprs := []string{
		"X(i,j) = B(i,k) * C(k,j)",
		"X(i,j) = B(i,j,k) * c(k)",
		"X(i,j,k) = B(i,j,l) * C(k,l)",
		"X(i,j) = B(i,k,l) * C(j,k) * D(j,l)",
		"x(i) = B(i,j) * c(j)",
	}
	executed := 0
	for trial := 0; trial < 120; trial++ {
		expr := exprs[r.Intn(len(exprs))]
		e := lang.MustParse(expr)
		vars := e.AllVars()
		perm := r.Perm(len(vars))
		order := make([]string, len(vars))
		for i, p := range perm {
			order[i] = vars[p]
		}
		inputs := map[string]*tensor.COO{}
		for _, a := range e.Accesses() {
			if _, ok := inputs[a.Tensor]; ok {
				continue
			}
			ds := make([]int, len(a.Idx))
			total := 1
			for i, v := range a.Idx {
				ds[i] = dims[v]
				total *= ds[i]
			}
			inputs[a.Tensor] = tensor.UniformRandom(a.Tensor, r, r.Intn(total/2)+1, ds...)
		}
		g, err := custard.Compile(e, nil, lang.Schedule{LoopOrder: order})
		if err != nil {
			t.Fatalf("trial %d %q order %v: compile: %v", trial, expr, order, err)
		}
		res, err := Run(g, inputs, Options{})
		if err != nil {
			t.Fatalf("trial %d %q order %v: %v", trial, expr, order, err)
		}
		want, err := lang.Gold(e, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := tensor.Equal(res.Output, want, 1e-6); err != nil {
			t.Fatalf("trial %d %q order %v: %v", trial, expr, order, err)
		}
		executed++
	}
	t.Logf("executed %d loop-order trials", executed)
}
