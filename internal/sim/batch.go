package sim

import (
	"fmt"
	"runtime"
	"sync"

	"sam/internal/graph"
	"sam/internal/tensor"
)

// Job is one graph + input binding in a batched simulation.
type Job struct {
	// Name labels the job in errors; when empty the graph name is used.
	Name string
	// Graph is the compiled SAM graph to execute. Ignored when Program is
	// set.
	Graph *graph.Graph
	// Program, when non-nil, is a precompiled program to execute instead of
	// Graph: the per-job validation and planning are already paid, so
	// batches of cached programs (the serving hot path) skip straight to
	// input binding. Programs are safe to share across jobs.
	Program *Program
	// Inputs binds source tensor names to tensors. Inputs are only read, so
	// jobs may share tensors.
	Inputs map[string]*tensor.COO
}

// nameOf returns the job's graph or program name, or "" when neither is set.
// Artifact-backed programs have no graph but still carry their encoded name.
func (j Job) nameOf() string {
	if j.Program != nil {
		return j.Program.name()
	}
	if j.Graph != nil {
		return j.Graph.Name
	}
	return ""
}

func (j Job) label(i int) string {
	if j.Name != "" {
		return j.Name
	}
	if n := j.nameOf(); n != "" {
		return n
	}
	return fmt.Sprintf("job %d", i)
}

// RunBatch executes many independent simulations concurrently over a worker
// pool and returns their results in job order. Every job gets its own Net
// (shared-nothing), so the results are identical to running the jobs
// sequentially with Run under the same Options. Options.Workers bounds the
// pool size (0 means GOMAXPROCS). The first error in job order is returned;
// results for failed jobs are nil.
func RunBatch(jobs []Job, opt Options) ([]*Result, error) {
	results, _, err := RunBatchErrs(jobs, opt)
	return results, err
}

// RunBatchErrs is RunBatch with per-job error attribution: errs[i] holds
// job i's failure (nil on success), so batch callers can report each
// failure to its own requester instead of sharing the first one in job
// order. The returned error is that first per-job error, matching RunBatch;
// a batch-level failure (unknown engine) returns nil slices.
func RunBatchErrs(jobs []Job, opt Options) ([]*Result, []error, error) {
	eng, err := EngineFor(opt.Engine)
	if err != nil {
		return nil, nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				var res *Result
				var err error
				switch {
				case j.Program != nil:
					// Artifact-backed programs have no graph but run fine
					// on the functional engines; engine checks own the
					// rejection for the ones that need the graph.
					res, err = eng.RunProgram(j.Program, j.Inputs, opt)
				case j.Graph != nil:
					res, err = eng.Run(j.Graph, j.Inputs, opt)
				default:
					errs[i] = fmt.Errorf("sim: %s: nil graph", j.label(i))
					continue
				}
				if err != nil {
					// Engine errors already carry a "sim: <graph>" prefix;
					// add only the job label, and only when it adds signal.
					if j.Name != "" && j.Name != j.nameOf() {
						err = fmt.Errorf("%s: %w", j.Name, err)
					}
					errs[i] = err
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, errs, err
		}
	}
	return results, errs, nil
}
