package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sam/internal/custard"
	"sam/internal/graph"
	"sam/internal/lang"
	"sam/internal/tensor"
)

// identical fails unless two results carry bit-identical outputs (same
// dimensions, points, and values — no tolerance) and equal cycle counts.
func identical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Errorf("%s: cycles %d != %d", label, got.Cycles, want.Cycles)
	}
	if !reflect.DeepEqual(got.Output.Dims, want.Output.Dims) {
		t.Fatalf("%s: dims %v != %v", label, got.Output.Dims, want.Output.Dims)
	}
	if !reflect.DeepEqual(got.Output.Pts, want.Output.Pts) {
		t.Fatalf("%s: output points differ", label)
	}
}

// TestProgramDifferential proves cached-program execution is bit-identical
// to uncached sim.Run: for a battery of kernels, every engine, and Par in
// {1, 4}, a Program built once and run repeatedly (the cache hit path) must
// reproduce the fresh-compile path exactly, including cycle counts on the
// cycle engines.
func TestProgramDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := tensor.UniformRandom("B", rng, 300, 60, 50)
	c := tensor.UniformRandom("c", rng, 25, 50)
	cc := tensor.UniformRandom("C", rng, 300, 50, 60)
	kernels := []struct {
		name   string
		expr   string
		inputs map[string]*tensor.COO
	}{
		{"spmv", "x(i) = B(i,j) * c(j)", map[string]*tensor.COO{"B": b, "c": c}},
		{"spmspm", "X(i,j) = B(i,k) * C(k,j)", map[string]*tensor.COO{"B": b, "C": cc}},
	}
	for _, k := range kernels {
		e := lang.MustParse(k.expr)
		for _, par := range []int{1, 4} {
			g, err := custard.Compile(e, nil, lang.Schedule{Par: par})
			if err != nil {
				t.Fatalf("%s par=%d: %v", k.name, par, err)
			}
			prog, err := NewProgram(g)
			if err != nil {
				t.Fatalf("%s par=%d: NewProgram: %v", k.name, par, err)
			}
			for _, kind := range []EngineKind{EngineEvent, EngineNaive, EngineFlow} {
				label := fmt.Sprintf("%s par=%d %s", k.name, par, kind)
				opt := Options{Engine: kind}
				fresh, err := Run(g, k.inputs, opt)
				if err != nil {
					t.Fatalf("%s: uncached: %v", label, err)
				}
				// Two cached runs: the second exercises genuine reuse.
				for trial := 0; trial < 2; trial++ {
					cached, err := prog.Run(k.inputs, opt)
					if err != nil {
						t.Fatalf("%s: cached run %d: %v", label, trial, err)
					}
					identical(t, label, cached, fresh)
				}
			}
		}
	}
}

// TestProgramConcurrentRuns shares one Program across goroutines (the
// serving cache does exactly this) and checks, under -race, that concurrent
// runs neither interfere nor diverge.
func TestProgramConcurrentRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inputs := map[string]*tensor.COO{
		"B": tensor.UniformRandom("B", rng, 200, 40, 40),
		"c": tensor.UniformRandom("c", rng, 20, 40),
	}
	g, err := custard.Compile(lang.MustParse("x(i) = B(i,j) * c(j)"), nil, lang.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgram(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := prog.Run(inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := prog.Run(inputs, Options{})
			if err != nil {
				errs[i] = err
				return
			}
			if res.Cycles != want.Cycles || !reflect.DeepEqual(res.Output.Pts, want.Output.Pts) {
				errs[i] = fmt.Errorf("run %d diverged", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestProgramBatch routes precompiled programs through RunBatch and checks
// parity with per-job Run.
func TestProgramBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inputs := map[string]*tensor.COO{
		"B": tensor.UniformRandom("B", rng, 200, 40, 40),
		"c": tensor.UniformRandom("c", rng, 20, 40),
	}
	g, err := custard.Compile(lang.MustParse("x(i) = B(i,j) * c(j)"), nil, lang.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgram(g)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprintf("job%d", i), Program: prog, Inputs: inputs}
	}
	results, err := RunBatch(jobs, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		identical(t, fmt.Sprintf("batch job %d", i), res, want)
	}
}

// TestNewProgramRejectsInvalid checks validation happens at program build
// time, not mid-run.
func TestNewProgramRejectsInvalid(t *testing.T) {
	if _, err := NewProgram(nil); err == nil {
		t.Errorf("NewProgram(nil) = nil error")
	}
	g := &graph.Graph{Name: "broken"}
	n := g.AddNode(&graph.Node{Kind: graph.Repeat, Label: "rep"})
	_ = n
	if _, err := NewProgram(g); err == nil {
		t.Errorf("NewProgram on a graph with unconnected ports = nil error")
	}
}

// TestCheckEngineFlowLimits checks the up-front engine support validation:
// gallop and bitvector graphs are rejected for the flow engine with a
// descriptive error, while supported graphs (including Par graphs) pass.
func TestCheckEngineFlowLimits(t *testing.T) {
	spmv := lang.MustParse("x(i) = B(i,j) * c(j)")
	plain, err := custard.Compile(spmv, nil, lang.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := custard.Compile(spmv, nil, lang.Schedule{Par: 4})
	if err != nil {
		t.Fatal(err)
	}
	gallop, err := custard.Compile(spmv, nil, lang.Schedule{UseSkip: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EngineKind{EngineEvent, EngineNaive, EngineFlow} {
		if err := CheckEngine(kind, plain); err != nil {
			t.Errorf("CheckEngine(%s, plain) = %v", kind, err)
		}
		if err := CheckEngine(kind, par); err != nil {
			t.Errorf("CheckEngine(%s, par) = %v", kind, err)
		}
	}
	if err := CheckEngine(EngineFlow, gallop); err == nil {
		t.Errorf("CheckEngine(flow, gallop graph) = nil, want descriptive error")
	}
	if err := CheckEngine(EngineEvent, gallop); err != nil {
		t.Errorf("CheckEngine(event, gallop graph) = %v", err)
	}
	if err := CheckEngine("warp", plain); err == nil {
		t.Errorf("CheckEngine with unknown engine = nil error")
	}
	// The engine itself refuses up front, too.
	if _, err := Run(gallop, nil, Options{Engine: EngineFlow}); err == nil {
		t.Errorf("flow Run on gallop graph = nil error")
	}
}

// BenchmarkRequestColdSetup measures the full per-request setup of the
// uncached path: parse, compile, and program build (input binding and
// execution excluded). Compare with BenchmarkRequestWarmSetup.
func BenchmarkRequestColdSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := lang.Parse("x(i) = B(i,j) * c(j)")
		if err != nil {
			b.Fatal(err)
		}
		g, err := custard.Compile(e, nil, lang.Schedule{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewProgram(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRequestWarmSetup measures the cache-hit path's setup: a canonical
// key computation (what the serving cache pays before its map lookup).
func BenchmarkRequestWarmSetup(b *testing.B) {
	e := lang.MustParse("x(i) = B(i,j) * c(j)")
	for i := 0; i < b.N; i++ {
		_ = lang.CanonicalKey(e, nil, lang.Schedule{})
	}
}
