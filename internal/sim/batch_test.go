package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sam/internal/custard"
	"sam/internal/fiber"
	"sam/internal/lang"
	"sam/internal/tensor"
)

// TestRunBatchErrsPerJob checks batch error attribution and per-job engine
// accounting under the comp engine: every failed job carries its own error,
// every successful job records the engine that actually executed it — comp
// for lowerable graphs, event for the bitvector fallback — and RunBatch
// stays a first-error view of the same execution.
func TestRunBatchErrsPerJob(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	spmv, err := custard.Compile(lang.MustParse("x(i) = B(i,j) * c(j)"), nil, lang.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	bv, err := custard.CompileBitvector(lang.MustParse("x(i) = b(i) * c(i)"), lang.Formats{
		"b": lang.Uniform(1, fiber.Bitvector),
		"c": lang.Uniform(1, fiber.Bitvector),
	})
	if err != nil {
		t.Fatal(err)
	}
	spmvIn := map[string]*tensor.COO{
		"B": tensor.UniformRandom("B", rng, 120, 30, 30),
		"c": tensor.UniformRandom("c", rng, 15, 30),
	}
	bvIn := map[string]*tensor.COO{
		"b": tensor.UniformRandom("b", rng, 40, 200),
		"c": tensor.UniformRandom("c", rng, 40, 200),
	}
	jobs := []Job{
		{Name: "ok-comp", Graph: spmv, Inputs: spmvIn},
		{Name: "bad-missing-input", Graph: spmv, Inputs: map[string]*tensor.COO{"B": spmvIn["B"]}},
		{Name: "ok-fallback", Graph: bv, Inputs: bvIn},
		{Name: "bad-nil-graph"},
		{Name: "ok-comp-2", Graph: spmv, Inputs: spmvIn},
	}
	results, errs, first := RunBatchErrs(jobs, Options{Engine: EngineComp, Workers: 2})
	if len(results) != len(jobs) || len(errs) != len(jobs) {
		t.Fatalf("got %d results / %d errs, want %d each", len(results), len(errs), len(jobs))
	}
	if first == nil || errs[1] == nil || first.Error() != errs[1].Error() {
		t.Errorf("first error = %v, want job 1's error %v", first, errs[1])
	}
	wantEngine := map[int]EngineKind{0: EngineComp, 2: EngineEvent, 4: EngineComp}
	for i := range jobs {
		eng, wantOK := wantEngine[i]
		if wantOK {
			if errs[i] != nil || results[i] == nil {
				t.Errorf("job %d (%s): err = %v, result = %v, want success", i, jobs[i].Name, errs[i], results[i])
				continue
			}
			if results[i].Engine != eng {
				t.Errorf("job %d (%s): Result.Engine = %q, want %q", i, jobs[i].Name, results[i].Engine, eng)
			}
		} else if errs[i] == nil || results[i] != nil {
			t.Errorf("job %d (%s): err = %v, want per-job failure with nil result", i, jobs[i].Name, errs[i])
		}
	}
	// Each failure names its own job, not its batchmate's.
	if errs[1] != nil && !strings.Contains(errs[1].Error(), "bad-missing-input") {
		t.Errorf("job 1 error %q does not name its job", errs[1])
	}
	if errs[3] != nil && !strings.Contains(errs[3].Error(), "bad-nil-graph") {
		t.Errorf("job 3 error %q does not name its job", errs[3])
	}

	// RunBatch is the first-error view of the same batch.
	wrapped, err := RunBatch(jobs, Options{Engine: EngineComp, Workers: 2})
	if err == nil || err.Error() != first.Error() {
		t.Errorf("RunBatch error = %v, want RunBatchErrs's first %v", err, first)
	}
	for i := range jobs {
		if (wrapped[i] == nil) != (results[i] == nil) {
			t.Errorf("job %d: RunBatch result presence diverges from RunBatchErrs", i)
		}
	}
}

// TestBatchSharedProgramRace hammers one cached Program — one lazily built
// comp lowering, one run-context pool — from every batch worker at once.
// Run under -race this is the data-race gate for the pooled execution path;
// under the plain runner it still checks bit-identical results across all
// concurrent reuses.
func TestBatchSharedProgramRace(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g, err := custard.Compile(lang.MustParse("X(i,j) = B(i,k) * C(k,j)"),
		nil, lang.Schedule{LoopOrder: []string{"i", "k", "j"}, Par: 4})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgram(g)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]*tensor.COO{
		"B": tensor.UniformRandom("B", rng, 150, 30, 25),
		"C": tensor.UniformRandom("C", rng, 150, 25, 30),
	}
	tensor.QuantizeInts(rng, 7, inputs["B"], inputs["C"])
	want, err := prog.Run(inputs, Options{Engine: EngineComp})
	if err != nil {
		t.Fatal(err)
	}

	const n = 24
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprintf("shared-%d", i), Program: prog, Inputs: inputs}
	}
	results, errs, first := RunBatchErrs(jobs, Options{Engine: EngineComp, Workers: 8})
	if first != nil {
		t.Fatalf("batch failed: %v (errs %v)", first, errs)
	}
	for i, res := range results {
		if res.Engine != EngineComp {
			t.Errorf("job %d: Result.Engine = %q, want %q", i, res.Engine, EngineComp)
		}
		if err := tensor.IdenticalBits(want.Output, res.Output); err != nil {
			t.Errorf("job %d output diverged under shared-program reuse: %v", i, err)
		}
	}
}
