package sim

import (
	"fmt"
	"math"

	"sam/internal/tensor"
)

// Fixpoint update rules. The driver separates "what the program computes"
// (one relaxation step, e.g. y = M·x) from "how state advances" (the update
// rule below), which is all a whole family of iterative graph kernels needs:
// PageRank is SpMV plus the damped-teleport update, BFS/reachability is
// SpMV plus monotone saturation.
const (
	// FixpointPower feeds the program output straight back as the next
	// state: x' = y. Plain power iteration.
	FixpointPower = "power"
	// FixpointPageRank applies the damped PageRank update to the SpMV
	// output: x'_i = damping·y_i + (1-damping)/N over every node i. The
	// state is dense after one step (the teleport term touches every node).
	FixpointPageRank = "pagerank"
	// FixpointReach saturates monotonically: x'_i = 1 where x_i ≠ 0 or
	// y_i ≠ 0. With y = A·x this is frontier-less BFS — the reached set —
	// converging in graph-diameter iterations with Tol > 0.
	FixpointReach = "reach"
)

// maxFixpointIters caps MaxIters so a hostile or typo'd request cannot ask
// the serving layer for an unbounded iteration budget.
const maxFixpointIters = 100_000

// Fixpoint describes an iterative driver around one compiled program: the
// program is run repeatedly, its output folded back into the operand named
// Var by the Mode update rule, until the L1 step delta drops to Tol or
// MaxIters runs complete. The program compiles once and every iteration
// reuses it — with a bind cache on Options, static operands (the matrix)
// also bind once.
type Fixpoint struct {
	// Var names the state operand (an order-1 input tensor) the update rule
	// rewrites between iterations.
	Var string
	// MaxIters bounds the iteration count; required, in [1, 100000].
	MaxIters int
	// Tol stops iteration once the L1 delta ‖x' − x‖₁ of one update falls
	// to or below it. Zero disables the convergence check: exactly MaxIters
	// iterations run.
	Tol float64
	// Mode selects the update rule; empty means FixpointPower.
	Mode string
	// Damping is the FixpointPageRank damping factor in [0, 1]; zero means
	// the conventional 0.85. Ignored by the other modes.
	Damping float64
}

// FixpointResult is the outcome of RunFixpoint.
type FixpointResult struct {
	// Output is the final state of Var after the last update.
	Output *tensor.COO
	// Iterations is how many program runs executed.
	Iterations int
	// Converged reports whether the Tol check stopped iteration (always
	// false when Tol is zero).
	Converged bool
	// Deltas holds the L1 step delta of every iteration, in order.
	Deltas []float64
	// Cycles is the total simulated cycle count across iterations (zero on
	// the functional engines).
	Cycles int
	// Engine names the engine that executed the iterations.
	Engine EngineKind
}

// withDefaults validates the spec and fills defaulted fields.
func (fx Fixpoint) withDefaults() (Fixpoint, error) {
	if fx.Var == "" {
		return fx, fmt.Errorf("sim: fixpoint: var is required")
	}
	if fx.MaxIters < 1 || fx.MaxIters > maxFixpointIters {
		return fx, fmt.Errorf("sim: fixpoint: max_iters %d outside [1, %d]", fx.MaxIters, maxFixpointIters)
	}
	if fx.Tol < 0 || math.IsNaN(fx.Tol) {
		return fx, fmt.Errorf("sim: fixpoint: negative tol %v", fx.Tol)
	}
	switch fx.Mode {
	case "":
		fx.Mode = FixpointPower
	case FixpointPower, FixpointPageRank, FixpointReach:
	default:
		return fx, fmt.Errorf("sim: fixpoint: unknown mode %q (want %q, %q, or %q)",
			fx.Mode, FixpointPower, FixpointPageRank, FixpointReach)
	}
	if fx.Mode == FixpointPageRank {
		if fx.Damping == 0 {
			fx.Damping = 0.85
		}
		if fx.Damping < 0 || fx.Damping > 1 || math.IsNaN(fx.Damping) {
			return fx, fmt.Errorf("sim: fixpoint: damping %v outside [0, 1]", fx.Damping)
		}
	}
	return fx, nil
}

// Validate checks the spec without running anything, for callers (the
// serving layer) that must reject a bad request before admission.
func (fx Fixpoint) Validate() error {
	_, err := fx.withDefaults()
	return err
}

// Apply computes one fixpoint update from the program output y and the
// previous state x, returning the next state and the L1 step delta
// ‖x' − x‖₁. It is exported so drivers verifying against a reference
// evaluator (samsim -check) can replay the identical update rule outside
// RunFixpoint; the next state is built in ascending index order, so it is
// strictly sorted and rides the zero-copy bind fast path on the next
// iteration.
func (fx Fixpoint) Apply(y, x *tensor.COO) (*tensor.COO, float64, error) {
	fx, err := fx.withDefaults()
	if err != nil {
		return nil, 0, err
	}
	if x.Order() != 1 {
		return nil, 0, fmt.Errorf("sim: fixpoint: state %q has order %d, want an order-1 vector", fx.Var, x.Order())
	}
	n := x.Dims[0]
	if y.Order() != 1 || y.Dims[0] != n {
		return nil, 0, fmt.Errorf("sim: fixpoint: program output has dims %v, want [%d] to match state %q", y.Dims, n, fx.Var)
	}
	old := make([]float64, n)
	for _, p := range x.Pts {
		old[p.Crd[0]] = p.Val
	}
	out := make([]float64, n)
	for _, p := range y.Pts {
		out[p.Crd[0]] = p.Val
	}
	next := tensor.NewCOO(x.Name, n)
	var delta float64
	for i := 0; i < n; i++ {
		var v float64
		switch fx.Mode {
		case FixpointPower:
			v = out[i]
		case FixpointPageRank:
			v = fx.Damping*out[i] + (1-fx.Damping)/float64(n)
		case FixpointReach:
			if old[i] != 0 || out[i] != 0 {
				v = 1
			}
		}
		delta += math.Abs(v - old[i])
		if v != 0 {
			next.Append(v, int64(i))
		}
	}
	return next, delta, nil
}

// RunFixpoint drives a compiled program to a fixpoint: each iteration runs
// the program, folds its output back into the operand fx.Var with the
// spec's update rule, and stops on convergence (Tol) or after MaxIters
// runs. The caller's inputs map is not mutated. Per-iteration cost is one
// Program.Run — no re-parse, no re-compile, and with Options.BindCache set,
// no re-bind of the static operands.
func RunFixpoint(p *Program, inputs map[string]*tensor.COO, fx Fixpoint, opt Options) (*FixpointResult, error) {
	fx, err := fx.withDefaults()
	if err != nil {
		return nil, err
	}
	x, ok := inputs[fx.Var]
	if !ok {
		return nil, fmt.Errorf("sim: fixpoint: no input named %q to iterate", fx.Var)
	}
	if x.Order() != 1 {
		return nil, fmt.Errorf("sim: fixpoint: state %q has order %d, want an order-1 vector", fx.Var, x.Order())
	}
	cur := make(map[string]*tensor.COO, len(inputs))
	for k, v := range inputs {
		cur[k] = v
	}
	res := &FixpointResult{Engine: opt.Engine}
	if res.Engine == "" {
		res.Engine = EngineEvent
	}
	for it := 0; it < fx.MaxIters; it++ {
		r, err := p.Run(cur, opt)
		if err != nil {
			return nil, fmt.Errorf("sim: fixpoint iteration %d: %w", it+1, err)
		}
		next, delta, err := fx.Apply(r.Output, x)
		if err != nil {
			return nil, fmt.Errorf("sim: fixpoint iteration %d: %w", it+1, err)
		}
		res.Iterations++
		res.Cycles += r.Cycles
		res.Engine = r.Engine
		res.Deltas = append(res.Deltas, delta)
		x = next
		cur[fx.Var] = x
		if fx.Tol > 0 && delta <= fx.Tol {
			res.Converged = true
			break
		}
	}
	res.Output = x
	return res, nil
}
