package sim

import (
	"math/rand"
	"testing"

	"sam/internal/custard"
	"sam/internal/graph"
	"sam/internal/lang"
	"sam/internal/tensor"
)

// quantize replaces every stored value with a small nonzero integer. Integer
// values make floating-point sums exact regardless of association, so
// parallel lane partials (which reassociate reductions across lanes) must be
// bit-identical to the sequential result, and both to the gold model.
func quantize(r *rand.Rand, ts ...*tensor.COO) {
	tensor.QuantizeInts(r, 7, ts...)
}

func quantizeInputs(r *rand.Rand, inputs map[string]*tensor.COO) {
	for _, t := range inputs {
		quantize(r, t)
	}
}

// parEngines is the engine matrix every parallel graph must agree across.
var parEngines = []EngineKind{EngineEvent, EngineNaive, EngineFlow}

// parKernel is one fixed-kernel configuration of the lane battery. join
// classifies the cycle expectation: "strict" joins (a reduction shrinks the
// serialized output below the forked compute streams) must beat Par=1;
// "elem" joins (elementwise kernels) run the full stream through the joiner
// and may cost the constant fork/join pipeline latency; "combine" joins
// (outermost variable reduced) buffer lane partials through the reduction
// tree, costing up to one extra output replay per tree level.
type parKernel struct {
	name  string
	expr  string
	order []string
	join  string
}

// TestParKernelMatrix runs the paper's evaluation kernels under every lane
// count and engine: outputs must be bit-identical to Par=1 and to the gold
// model, and on kernels with a reduction the event engine must simulate
// strictly fewer cycles than Par=1 (the join streams are smaller than the
// forked compute streams). Elementwise kernels join at full stream rate, so
// they only get the constant-latency regression bound.
func TestParKernelMatrix(t *testing.T) {
	kernels := []parKernel{
		{name: "spmv", expr: "x(i) = B(i,j) * c(j)", join: "strict"},
		{name: "spmspm-ijk", expr: "X(i,j) = B(i,k) * C(k,j)", order: []string{"i", "j", "k"}, join: "strict"},
		{name: "spmspm-ikj", expr: "X(i,j) = B(i,k) * C(k,j)", order: []string{"i", "k", "j"}, join: "strict"},
		{name: "spmspm-jki", expr: "X(i,j) = B(i,k) * C(k,j)", order: []string{"j", "k", "i"}, join: "strict"},
		{name: "spmspm-kij", expr: "X(i,j) = B(i,k) * C(k,j)", order: []string{"k", "i", "j"}, join: "combine"},
		{name: "spmadd", expr: "X(i,j) = B(i,j) + C(i,j)", join: "elem"},
		{name: "sddmm", expr: "X(i,j) = B(i,j) * C(i,k) * D(j,k)", join: "strict"},
		{name: "scalar", expr: "x = B(i,j) * c(j)", join: "strict"},
	}
	dims := map[string]int{"i": 40, "j": 36, "k": 20}
	r := rand.New(rand.NewSource(2024))
	for _, k := range kernels {
		e := lang.MustParse(k.expr)
		inputs := map[string]*tensor.COO{}
		for _, a := range e.Accesses() {
			if _, ok := inputs[a.Tensor]; ok {
				continue
			}
			ds := make([]int, len(a.Idx))
			total := 1
			for i, v := range a.Idx {
				ds[i] = dims[v]
				total *= ds[i]
			}
			inputs[a.Tensor] = tensor.UniformRandom(a.Tensor, r, total/4+1, ds...)
		}
		quantizeInputs(r, inputs)
		sched := lang.Schedule{LoopOrder: k.order}
		g1, err := custard.Compile(e, nil, sched)
		if err != nil {
			t.Fatalf("%s: compile par1: %v", k.name, err)
		}
		base, err := Run(g1, inputs, Options{})
		if err != nil {
			t.Fatalf("%s: par1: %v", k.name, err)
		}
		want, err := lang.Gold(e, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := tensor.Equal(base.Output, want, 0); err != nil {
			t.Fatalf("%s: par1 vs gold: %v", k.name, err)
		}
		for _, p := range []int{2, 4, 8} {
			sched.Par = p
			gp, err := custard.Compile(e, nil, sched)
			if err != nil {
				t.Fatalf("%s: compile par%d: %v", k.name, p, err)
			}
			for _, eng := range parEngines {
				res, err := Run(gp, inputs, Options{Engine: eng})
				if err != nil {
					t.Fatalf("%s par%d %s: %v", k.name, p, eng, err)
				}
				if err := tensor.Equal(res.Output, base.Output, 0); err != nil {
					t.Fatalf("%s par%d %s vs par1: %v", k.name, p, eng, err)
				}
				if err := tensor.Equal(res.Output, want, 0); err != nil {
					t.Fatalf("%s par%d %s vs gold: %v", k.name, p, eng, err)
				}
				if eng != EngineFlow {
					bound := base.Cycles
					switch k.join {
					case "elem":
						bound = base.Cycles + 64
					case "combine":
						bound = 2*base.Cycles + 64
					}
					if res.Cycles > bound {
						t.Errorf("%s par%d %s: %d cycles, past the %s bound %d (par1 %d)", k.name, p, eng, res.Cycles, k.join, bound, base.Cycles)
					}
				}
			}
		}
	}
}

// TestParStrictSpeedup pins the acceptance bar: on SpMV and SpM*SpM every
// lane count must simulate strictly fewer cycles than Par=1, and more lanes
// must keep helping through 8.
func TestParStrictSpeedup(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	b := tensor.UniformRandom("B", r, 1200, 120, 100)
	c := tensor.UniformRandom("c", r, 60, 100)
	cc := tensor.UniformRandom("C", r, 1200, 100, 120)
	for _, k := range []struct {
		name   string
		expr   string
		inputs map[string]*tensor.COO
	}{
		{"spmv", "x(i) = B(i,j) * c(j)", map[string]*tensor.COO{"B": b, "c": c}},
		{"spmspm", "X(i,j) = B(i,k) * C(k,j)", map[string]*tensor.COO{"B": b, "C": cc}},
	} {
		e := lang.MustParse(k.expr)
		prev := 0
		for _, p := range []int{1, 2, 4, 8} {
			g, err := custard.Compile(e, nil, lang.Schedule{Par: p})
			if err != nil {
				t.Fatalf("%s par%d: %v", k.name, p, err)
			}
			res, err := Run(g, k.inputs, Options{})
			if err != nil {
				t.Fatalf("%s par%d: %v", k.name, p, err)
			}
			if p > 1 && res.Cycles >= prev {
				t.Errorf("%s: par%d cycles %d, want strictly below %d", k.name, p, res.Cycles, prev)
			}
			prev = res.Cycles
		}
	}
}

// TestFuzzParLaneEquivalence is the differential lane-count battery over the
// random statement generator: for every statement that compiles under Par=1
// and Par in {2,4,8}, all three engines must produce outputs bit-identical
// to the sequential graph and to the gold model (inputs are quantized to
// integers so reductions are exact under any association).
func TestFuzzParLaneEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(424242))
	executed := 0
	for trial := 0; trial < 200; trial++ {
		expr, inputs := randExpr(r)
		quantizeInputs(r, inputs)
		e, err := lang.Parse(expr)
		if err != nil {
			continue
		}
		g1, err := custard.Compile(e, nil, lang.Schedule{})
		if err != nil {
			continue
		}
		base, err := Run(g1, inputs, Options{})
		if err != nil {
			// A statement the sequential pipeline cannot execute (e.g. a
			// reduction attached inside an addition at an outer loop
			// position) is outside the battery: Par must only match what
			// Par=1 can do.
			continue
		}
		want, err := lang.Gold(e, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if err := tensor.Equal(base.Output, want, 0); err != nil {
			t.Fatalf("trial %d %q: par1 vs gold: %v", trial, expr, err)
		}
		p := []int{2, 4, 8}[trial%3]
		gp, err := custard.Compile(e, nil, lang.Schedule{Par: p})
		if err != nil {
			// Par legitimately refuses loop orders whose outermost reduction
			// covers only part of the expression; the sequential graph stays
			// the reference for those.
			continue
		}
		for _, eng := range parTrialEngines(g1, inputs) {
			res, err := Run(gp, inputs, Options{Engine: eng})
			if err != nil {
				t.Fatalf("trial %d %q par%d %s: %v", trial, expr, p, eng, err)
			}
			if err := tensor.Equal(res.Output, base.Output, 0); err != nil {
				t.Fatalf("trial %d %q par%d %s vs par1: %v", trial, expr, p, eng, err)
			}
		}
		executed++
	}
	if executed < 60 {
		t.Fatalf("only %d/200 random statements executed under Par; generator or compiler too restrictive", executed)
	}
	t.Logf("executed %d/200 random statements under Par", executed)
}

// parTrialEngines returns the engines a fuzz trial compares: the two cycle
// engines always, plus flow when the sequential graph runs on it (flow does
// not support every block the adversarial corpus can produce, e.g. reducers
// beyond n=2).
func parTrialEngines(g1 *graph.Graph, inputs map[string]*tensor.COO) []EngineKind {
	if _, err := Run(g1, inputs, Options{Engine: EngineFlow}); err != nil {
		return []EngineKind{EngineEvent, EngineNaive}
	}
	return parEngines
}

// TestFuzzParRandomLoopOrders sweeps random loop orders (covering the
// cross-lane reduction join whenever the outermost variable is reduced)
// under every lane count.
func TestFuzzParRandomLoopOrders(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	dims := map[string]int{"i": 9, "j": 8, "k": 7, "l": 6}
	exprs := []string{
		"X(i,j) = B(i,k) * C(k,j)",
		"X(i,j) = B(i,j,k) * c(k)",
		"X(i,j,k) = B(i,j,l) * C(k,l)",
		"x(i) = B(i,j) * c(j)",
		"X(i,j) = B(i,j) + C(i,j)",
	}
	executed := 0
	for trial := 0; trial < 90; trial++ {
		expr := exprs[r.Intn(len(exprs))]
		e := lang.MustParse(expr)
		vars := e.AllVars()
		perm := r.Perm(len(vars))
		order := make([]string, len(vars))
		for i, p := range perm {
			order[i] = vars[p]
		}
		inputs := map[string]*tensor.COO{}
		for _, a := range e.Accesses() {
			if _, ok := inputs[a.Tensor]; ok {
				continue
			}
			ds := make([]int, len(a.Idx))
			total := 1
			for i, v := range a.Idx {
				ds[i] = dims[v]
				total *= ds[i]
			}
			inputs[a.Tensor] = tensor.UniformRandom(a.Tensor, r, r.Intn(total/2)+1, ds...)
		}
		quantizeInputs(r, inputs)
		g1, err := custard.Compile(e, nil, lang.Schedule{LoopOrder: order})
		if err != nil {
			t.Fatalf("trial %d %q order %v: %v", trial, expr, order, err)
		}
		base, err := Run(g1, inputs, Options{})
		if err != nil {
			t.Fatalf("trial %d %q order %v: par1: %v", trial, expr, order, err)
		}
		p := []int{2, 4, 8}[r.Intn(3)]
		gp, err := custard.Compile(e, nil, lang.Schedule{LoopOrder: order, Par: p})
		if err != nil {
			continue // partial-expression outermost reduction: Par refuses
		}
		for _, eng := range parTrialEngines(g1, inputs) {
			res, err := Run(gp, inputs, Options{Engine: eng})
			if err != nil {
				t.Fatalf("trial %d %q order %v par%d %s: %v", trial, expr, order, p, eng, err)
			}
			if err := tensor.Equal(res.Output, base.Output, 0); err != nil {
				t.Fatalf("trial %d %q order %v par%d %s vs par1: %v", trial, expr, order, p, eng, err)
			}
		}
		executed++
	}
	if executed < 45 {
		t.Fatalf("only %d/90 loop-order trials executed under Par", executed)
	}
	t.Logf("executed %d/90 loop-order trials under Par", executed)
}
