package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sam/internal/custard"
	"sam/internal/fiber"
	"sam/internal/lang"
	"sam/internal/tensor"
)

// corpusCase is one compiled statement + inputs for differential testing.
type corpusCase struct {
	name    string
	expr    string
	formats lang.Formats
	sched   lang.Schedule
	opt     Options
}

// engineCorpus is the battery the engines are differentially tested over:
// the Table 1 kernel shapes under several loop orders, formats, and queue
// capacities (bounded queues exercise the backpressure wakeup path).
func engineCorpus() []corpusCase {
	var out []corpusCase
	exprs := []struct {
		expr  string
		order []string
	}{
		{"x(i) = B(i,j) * c(j)", nil},
		{"X(i,j) = B(i,k) * C(k,j)", []string{"i", "k", "j"}},
		{"X(i,j) = B(i,k) * C(k,j)", []string{"i", "j", "k"}},
		{"X(i,j) = B(i,k) * C(k,j)", []string{"k", "i", "j"}},
		{"X(i,j) = B(i,j) * C(i,k) * D(j,k)", nil},
		{"x = B(i,j,k) * C(i,j,k)", nil},
		{"X(i,j) = B(i,j,k) * c(k)", nil},
		{"X(i,j,k) = B(i,j,l) * C(k,l)", nil},
		{"X(i,j) = B(i,j) + C(i,j)", nil},
		{"X(i,j) = B(i,j) + C(i,j) + D(i,j)", nil},
		{"x(i) = b(i) - C(i,j) * d(j)", nil},
		{"x(i) = alpha * B^T(i,j) * c(j) + beta * d(i)", nil},
	}
	for _, e := range exprs {
		out = append(out, corpusCase{
			name:  e.expr,
			expr:  e.expr,
			sched: lang.Schedule{LoopOrder: e.order},
		})
	}
	// Format variants and the skip/locate rewrites on the SpMV shape.
	out = append(out,
		corpusCase{
			name: "spmv csr", expr: "x(i) = B(i,j) * c(j)",
			formats: lang.Formats{"B": lang.CSR(2), "c": lang.Uniform(1, fiber.Dense)},
		},
		corpusCase{
			name: "spmv linkedlist", expr: "x(i) = B(i,j) * c(j)",
			formats: lang.Formats{"B": lang.Format{Levels: []fiber.Format{fiber.Compressed, fiber.LinkedList}}},
		},
		corpusCase{
			name: "elementwise skip", expr: "x(i) = b(i) * c(i)",
			sched: lang.Schedule{UseSkip: true},
		},
		corpusCase{
			name: "spmv locators", expr: "x(i) = B(i,j) * c(j)",
			formats: lang.Formats{"c": lang.Uniform(1, fiber.Dense)},
			sched:   lang.Schedule{UseLocators: true},
		},
		// Bounded queues: backpressure makes producers block on full
		// queues, exercising the pop-wakeup path of the event scheduler.
		corpusCase{
			name: "spmm cap2", expr: "X(i,j) = B(i,k) * C(k,j)",
			sched: lang.Schedule{LoopOrder: []string{"i", "k", "j"}},
			opt:   Options{QueueCap: 2},
		},
		corpusCase{
			name: "spmm cap8", expr: "X(i,j) = B(i,k) * C(k,j)",
			sched: lang.Schedule{LoopOrder: []string{"k", "i", "j"}},
			opt:   Options{QueueCap: 8},
		},
		corpusCase{
			name: "sddmm cap4", expr: "X(i,j) = B(i,j) * C(i,k) * D(j,k)",
			opt: Options{QueueCap: 4},
		},
	)
	return out
}

// corpusInputs draws random inputs for a statement's operands.
func corpusInputs(expr string, seed int64) (map[string]*tensor.COO, *lang.Einsum) {
	dims := map[string]int{"i": 11, "j": 9, "k": 8, "l": 6}
	rng := rand.New(rand.NewSource(seed))
	e := lang.MustParse(expr)
	inputs := map[string]*tensor.COO{}
	for _, a := range e.Accesses() {
		if _, ok := inputs[a.Tensor]; ok {
			continue
		}
		if len(a.Idx) == 0 {
			s := tensor.NewCOO(a.Tensor)
			s.Append(rng.Float64() + 0.5)
			inputs[a.Tensor] = s
			continue
		}
		ds := make([]int, len(a.Idx))
		total := 1
		for i, v := range a.Idx {
			ds[i] = dims[v]
			total *= ds[i]
		}
		nnz := total / 5
		if nnz < 1 {
			nnz = 1
		}
		inputs[a.Tensor] = tensor.UniformRandom(a.Tensor, rng, nnz, ds...)
	}
	return inputs, e
}

// TestEngineEquivalence asserts the event-driven ready-set scheduler
// produces byte-identical outputs, identical cycle counts, and identical
// per-stream statistics to the naive tick-all reference loop over the whole
// corpus.
func TestEngineEquivalence(t *testing.T) {
	for _, tc := range engineCorpus() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				inputs, e := corpusInputs(tc.expr, seed*17)
				g, err := custard.Compile(e, tc.formats, tc.sched)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				naiveOpt := tc.opt
				naiveOpt.Engine = EngineNaive
				want, err := Run(g, inputs, naiveOpt)
				if err != nil {
					t.Fatalf("naive: %v", err)
				}
				eventOpt := tc.opt
				eventOpt.Engine = EngineEvent
				got, err := Run(g, inputs, eventOpt)
				if err != nil {
					t.Fatalf("event: %v", err)
				}
				if got.Cycles != want.Cycles {
					t.Errorf("cycles: event %d, naive %d", got.Cycles, want.Cycles)
				}
				if !reflect.DeepEqual(got.Output, want.Output) {
					t.Errorf("outputs differ:\n event %v\n naive %v", got.Output, want.Output)
				}
				if len(got.Streams) != len(want.Streams) {
					t.Fatalf("stream sets differ: %d vs %d", len(got.Streams), len(want.Streams))
				}
				for label, ws := range want.Streams {
					gs, ok := got.Streams[label]
					if !ok {
						t.Errorf("stream %q missing from event run", label)
						continue
					}
					if *gs != *ws {
						t.Errorf("stream %q stats: event %+v, naive %+v", label, *gs, *ws)
					}
				}
				// The functional executor must agree on the output where it
				// supports the graph (no cycle counts to compare).
				flowOpt := tc.opt
				flowOpt.Engine = EngineFlow
				if fres, err := Run(g, inputs, flowOpt); err == nil {
					if err := tensor.Equal(fres.Output, want.Output, 1e-9); err != nil {
						t.Errorf("flow output disagrees: %v", err)
					}
				}
			})
		}
	}
}

// TestEngineEquivalenceErrors checks that both cycle engines agree on
// failure behavior: a cycle-limit abort reports the same cycle count.
func TestEngineEquivalenceErrors(t *testing.T) {
	inputs, e := corpusInputs("X(i,j) = B(i,k) * C(k,j)", 7)
	g, err := custard.Compile(e, nil, lang.Schedule{LoopOrder: []string{"i", "k", "j"}})
	if err != nil {
		t.Fatal(err)
	}
	_, errNaive := Run(g, inputs, Options{MaxCycles: 50, Engine: EngineNaive})
	_, errEvent := Run(g, inputs, Options{MaxCycles: 50, Engine: EngineEvent})
	if errNaive == nil || errEvent == nil {
		t.Fatalf("expected cycle-limit errors, got naive=%v event=%v", errNaive, errEvent)
	}
	if errNaive.Error() != errEvent.Error() {
		t.Errorf("limit errors differ:\n naive: %v\n event: %v", errNaive, errEvent)
	}
}

// TestRunBatchMatchesSequential checks the batch runner returns results
// identical to sequential Run calls, in job order.
func TestRunBatchMatchesSequential(t *testing.T) {
	var jobs []Job
	var seq []*Result
	for _, tc := range engineCorpus()[:8] {
		inputs, e := corpusInputs(tc.expr, 23)
		g, err := custard.Compile(e, tc.formats, tc.sched)
		if err != nil {
			t.Fatalf("compile %s: %v", tc.name, err)
		}
		res, err := Run(g, inputs, Options{})
		if err != nil {
			t.Fatalf("sequential %s: %v", tc.name, err)
		}
		jobs = append(jobs, Job{Name: tc.name, Graph: g, Inputs: inputs})
		seq = append(seq, res)
	}
	for _, workers := range []int{1, 3, 16} {
		batch, err := RunBatch(jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("batch workers=%d: %v", workers, err)
		}
		for i := range jobs {
			if batch[i].Cycles != seq[i].Cycles {
				t.Errorf("workers=%d %s: cycles %d vs sequential %d", workers, jobs[i].Name, batch[i].Cycles, seq[i].Cycles)
			}
			if !reflect.DeepEqual(batch[i].Output, seq[i].Output) {
				t.Errorf("workers=%d %s: outputs differ", workers, jobs[i].Name)
			}
		}
	}
}
