package sim

import (
	"fmt"

	"sam/internal/core"
	"sam/internal/flow"
	"sam/internal/graph"
	"sam/internal/tensor"
)

// EngineKind names one of the graph executors behind Options.Engine.
type EngineKind string

// The available engines.
const (
	// EngineEvent is the default cycle-accurate engine: the event-driven
	// ready-set scheduler that ticks only blocks with newly visible input,
	// freed backpressure space, or pending internal work.
	EngineEvent EngineKind = "event"
	// EngineNaive is the reference cycle-accurate engine that ticks every
	// block on every cycle. It produces bit-identical results to
	// EngineEvent and exists for differential testing and benchmarking.
	EngineNaive EngineKind = "naive"
	// EngineFlow is the functional goroutine-per-block executor from
	// internal/flow: every block a goroutine, every stream a channel. It
	// computes outputs only — Result.Cycles is zero and no stream
	// statistics are gathered — and supports the core block set (graphs
	// using gallop or bitvector blocks need a cycle engine).
	EngineFlow EngineKind = "flow"
)

// Engine executes a compiled SAM graph against bound inputs. Both
// cycle-accurate schedulers and the goroutine executor implement it; pick
// one with EngineFor or, at the API surface, Options.Engine.
type Engine interface {
	// Name returns the EngineKind string naming the engine.
	Name() string
	// Run executes the graph and assembles the output tensor.
	Run(g *graph.Graph, inputs map[string]*tensor.COO, opt Options) (*Result, error)
}

// EngineFor resolves an engine selector; the empty kind selects the default
// event-driven engine.
func EngineFor(kind EngineKind) (Engine, error) {
	switch kind {
	case "", EngineEvent:
		return cycleEngine{kind: EngineEvent}, nil
	case EngineNaive:
		return cycleEngine{kind: EngineNaive}, nil
	case EngineFlow:
		return flowEngine{}, nil
	}
	return nil, fmt.Errorf("sim: unknown engine %q (want %q, %q or %q)", kind, EngineEvent, EngineNaive, EngineFlow)
}

// cycleEngine runs graphs on the cycle-accurate core.Net simulator, with
// either the event-driven or the naive scheduler.
type cycleEngine struct {
	kind EngineKind
}

func (e cycleEngine) Name() string { return string(e.kind) }

func (e cycleEngine) Run(g *graph.Graph, inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	if opt.MaxCycles == 0 {
		opt.MaxCycles = 2_000_000_000
	}
	b, err := newBuilder(g, inputs, opt)
	if err != nil {
		return nil, err
	}
	var cycles int
	if e.kind == EngineNaive {
		cycles, err = b.net.RunNaive(opt.MaxCycles)
	} else {
		cycles, err = b.net.Run(opt.MaxCycles)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", g.Name, err)
	}
	out, err := b.assemble()
	if err != nil {
		return nil, err
	}
	res := &Result{Cycles: cycles, Output: out, Streams: map[string]*core.StreamStats{}}
	for label, q := range b.monitored {
		res.Streams[label] = &q.Stats
	}
	return res, nil
}

// flowEngine adapts the goroutine-per-block executor to the Engine
// interface.
type flowEngine struct{}

func (flowEngine) Name() string { return string(EngineFlow) }

func (flowEngine) Run(g *graph.Graph, inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	out, err := flow.Run(g, inputs)
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, Streams: map[string]*core.StreamStats{}}, nil
}
