package sim

import (
	"fmt"
	"strings"

	"sam/internal/comp"
	"sam/internal/core"
	"sam/internal/flow"
	"sam/internal/graph"
	"sam/internal/tensor"
)

// EngineKind names one of the graph executors behind Options.Engine.
type EngineKind string

// The available engines.
const (
	// EngineEvent is the default cycle-accurate engine: the event-driven
	// ready-set scheduler that ticks only blocks with newly visible input,
	// freed backpressure space, or pending internal work.
	EngineEvent EngineKind = "event"
	// EngineNaive is the reference cycle-accurate engine that ticks every
	// block on every cycle. It produces bit-identical results to
	// EngineEvent and exists for differential testing and benchmarking.
	EngineNaive EngineKind = "naive"
	// EngineFlow is the functional goroutine-per-block executor from
	// internal/flow: every block a goroutine, every stream a channel.
	//
	// EngineFlow's limitations, authoritatively: it computes outputs only —
	// Result.Cycles is zero and no stream statistics are gathered, so
	// experiments and anything reading cycle counts must use a cycle
	// engine — and it supports the core block set only: graphs using
	// galloping intersection (Schedule.UseSkip), the bitvector pipeline, or
	// reducers deeper than matrices are rejected up front by CheckEngine
	// with a descriptive error.
	EngineFlow EngineKind = "flow"
	// EngineComp is the compiled co-iteration engine from internal/comp: the
	// graph is lowered once into a tree of Go closures that co-iterate the
	// bound fibertree storage directly — no token queues, no per-cycle
	// scheduling — producing outputs bit-identical to the cycle engines.
	//
	// Like EngineFlow it computes outputs only: Result.Cycles is zero and no
	// stream statistics are gathered. Unlike EngineFlow it never rejects a
	// graph: graphs outside its block set (the bitvector pipeline) fall back
	// to the event engine transparently, recorded in Result.Engine, so
	// CheckEngine always accepts it.
	EngineComp EngineKind = "comp"
	// EngineByte is the portable-artifact interpreter from internal/prog:
	// the graph's compiled lowering is serialized to the versioned byte
	// format (prog.Encode), decoded back (prog.Decode), and executed as a
	// flat dispatch loop over the decoded step table. It shares the comp
	// engine's lowering and closure bodies, so outputs are bit-identical to
	// EngineComp (and so to the cycle engines) by construction; what it
	// adds is that the program can cross a process boundary — samsim
	// -emit/-load round-trips artifacts to files and serve's disk cache
	// loads them without re-running custard, the optimizer or lowering.
	//
	// Like EngineComp it computes outputs only (Result.Cycles is zero, no
	// stream statistics) and falls back to the event engine for graphs
	// outside the compiled block set (the bitvector pipeline), so
	// CheckEngine always accepts it on graph-backed programs.
	EngineByte EngineKind = "byte"
)

// Engines lists every registered engine kind, in the order user-facing
// messages should print them.
func Engines() []EngineKind {
	return []EngineKind{EngineEvent, EngineNaive, EngineFlow, EngineComp, EngineByte}
}

// engineList renders the registered engines for error messages.
func engineList() string {
	names := make([]string, 0, len(Engines()))
	for _, k := range Engines() {
		names = append(names, fmt.Sprintf("%q", string(k)))
	}
	return strings.Join(names, ", ")
}

// Engine executes a compiled SAM graph against bound inputs. Both
// cycle-accurate schedulers and the goroutine executor implement it; pick
// one with EngineFor or, at the API surface, Options.Engine.
type Engine interface {
	// Name returns the EngineKind string naming the engine.
	Name() string
	// Run executes the graph and assembles the output tensor.
	Run(g *graph.Graph, inputs map[string]*tensor.COO, opt Options) (*Result, error)
	// RunProgram executes a precompiled program, skipping the per-call
	// validation and planning Run pays.
	RunProgram(p *Program, inputs map[string]*tensor.COO, opt Options) (*Result, error)
}

// CheckEngine reports up front whether the engine can execute the graph.
// The cycle engines run every block kind, and the compiled engine
// (EngineComp) accepts every graph because it falls back to the event
// engine for blocks it cannot lower; the goroutine executor (EngineFlow)
// supports the core block set only, so graphs using galloping intersection
// (Schedule.UseSkip), the bitvector pipeline, or reducers deeper than
// matrices get a descriptive error here instead of failing mid-run. An
// unknown engine kind also errors.
func CheckEngine(kind EngineKind, g *graph.Graph) error {
	if _, err := EngineFor(kind); err != nil {
		return err
	}
	if kind != EngineFlow {
		return nil
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case graph.GallopIntersect:
			return fmt.Errorf("sim: engine %q cannot run graph %q: gallop intersection %q (Schedule.UseSkip) needs a cycle engine (%q or %q)",
				EngineFlow, g.Name, n.Label, EngineEvent, EngineNaive)
		case graph.BVScanner, graph.BVIntersect, graph.VecLoad, graph.VecALU,
			graph.BVExpand, graph.BVConvert, graph.BVWriter, graph.VecValsWriter:
			return fmt.Errorf("sim: engine %q cannot run graph %q: bitvector block %q needs a cycle engine (%q or %q)",
				EngineFlow, g.Name, n.Label, EngineEvent, EngineNaive)
		case graph.Reduce:
			if n.RedN > 2 {
				return fmt.Errorf("sim: engine %q cannot run graph %q: %d-dimensional reducer %q needs a cycle engine (%q or %q)",
					EngineFlow, g.Name, n.RedN, n.Label, EngineEvent, EngineNaive)
			}
		}
	}
	return nil
}

// EngineFor resolves an engine selector; the empty kind selects the default
// event-driven engine.
func EngineFor(kind EngineKind) (Engine, error) {
	switch kind {
	case "", EngineEvent:
		return cycleEngine{kind: EngineEvent}, nil
	case EngineNaive:
		return cycleEngine{kind: EngineNaive}, nil
	case EngineFlow:
		return flowEngine{}, nil
	case EngineComp:
		return compEngine{}, nil
	case EngineByte:
		return byteEngine{}, nil
	}
	return nil, fmt.Errorf("sim: unknown engine %q (registered engines: %s)", kind, engineList())
}

// cycleEngine runs graphs on the cycle-accurate core.Net simulator, with
// either the event-driven or the naive scheduler.
type cycleEngine struct {
	kind EngineKind
}

func (e cycleEngine) Name() string { return string(e.kind) }

func (e cycleEngine) Run(g *graph.Graph, inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	p, err := NewProgram(g)
	if err != nil {
		return nil, err
	}
	return e.RunProgram(p, inputs, opt)
}

func (e cycleEngine) RunProgram(p *Program, inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	if p.g == nil {
		return nil, p.CheckEngine(e.kind)
	}
	if opt.MaxCycles == 0 {
		opt.MaxCycles = 2_000_000_000
	}
	mark := opt.Trace.Len()
	b, err := newBuilder(p, inputs, opt)
	if err != nil {
		return nil, err
	}
	run := opt.Trace.Start("run")
	var cycles int
	if e.kind == EngineNaive {
		cycles, err = b.net.RunNaive(opt.MaxCycles)
	} else {
		cycles, err = b.net.Run(opt.MaxCycles)
	}
	run.End()
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", p.g.Name, err)
	}
	asm := opt.Trace.Start("assemble")
	out, err := b.assemble()
	asm.End()
	if err != nil {
		return nil, err
	}
	res := &Result{Cycles: cycles, Output: out, Streams: map[string]*core.StreamStats{}, Engine: e.kind}
	res.Phases = opt.Trace.SpansSince(mark)
	b.streams(res)
	return res, nil
}

// flowEngine adapts the goroutine-per-block executor to the Engine
// interface.
type flowEngine struct{}

func (flowEngine) Name() string { return string(EngineFlow) }

func (flowEngine) Run(g *graph.Graph, inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	if err := CheckEngine(EngineFlow, g); err != nil {
		return nil, err
	}
	out, err := flow.Run(g, inputs)
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, Streams: map[string]*core.StreamStats{}, Engine: EngineFlow}, nil
}

func (e flowEngine) RunProgram(p *Program, inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	// The support check was precomputed at program build time; beyond it
	// the goroutine executor has no input-independent setup to amortize.
	if p.flowErr != nil {
		return nil, p.flowErr
	}
	mark := opt.Trace.Len()
	run := opt.Trace.Start("run")
	out, err := flow.Run(p.g, inputs)
	run.End()
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, Streams: map[string]*core.StreamStats{}, Engine: EngineFlow,
		Phases: opt.Trace.SpansSince(mark)}, nil
}

// compEngine adapts the compiled co-iteration engine (internal/comp) to the
// Engine interface. Graphs its lowering does not support — the bitvector
// pipeline — fall back to the event engine; the Result records which engine
// actually ran.
type compEngine struct{}

func (compEngine) Name() string { return string(EngineComp) }

func (e compEngine) Run(g *graph.Graph, inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	p, err := NewProgram(g)
	if err != nil {
		return nil, err
	}
	return e.RunProgram(p, inputs, opt)
}

func (e compEngine) RunProgram(p *Program, inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	cp, err := p.compProgram()
	if err != nil {
		// Fall back to the event engine only for graphs outside the
		// compiled block set, per the CheckEngine contract that comp
		// accepts every graph; the Result's Engine field records the
		// fallback. Any other lowering failure on a supported graph is a
		// comp bug and must surface, not be papered over by a silently
		// different engine. (Artifact-backed programs have the compiled
		// program pre-set and never reach here.)
		if p.g != nil && comp.Check(p.g) != nil {
			return cycleEngine{kind: EngineEvent}.RunProgram(p, inputs, opt)
		}
		return nil, fmt.Errorf("sim: %s: %w", p.name(), err)
	}
	return runCompiled(p, cp, inputs, opt, EngineComp)
}

// byteEngine adapts the portable-artifact interpreter (internal/prog) to
// the Engine interface. The program's artifact form is built (or, for
// artifact-backed programs, was decoded) once and reused; graphs outside
// the compiled block set fall back to the event engine, mirroring
// compEngine, with the Result recording which engine actually ran.
type byteEngine struct{}

func (byteEngine) Name() string { return string(EngineByte) }

func (e byteEngine) Run(g *graph.Graph, inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	p, err := NewProgram(g)
	if err != nil {
		return nil, err
	}
	return e.RunProgram(p, inputs, opt)
}

func (e byteEngine) RunProgram(p *Program, inputs map[string]*tensor.COO, opt Options) (*Result, error) {
	bp, err := p.byteProgram()
	if err != nil {
		if p.g != nil && comp.Check(p.g) != nil {
			return cycleEngine{kind: EngineEvent}.RunProgram(p, inputs, opt)
		}
		return nil, fmt.Errorf("sim: %s: %w", p.name(), err)
	}
	return runCompiled(p, bp.Compiled(), inputs, opt, EngineByte)
}

// runCompiled is the shared functional-engine run core: bind operands
// through the program's plan, execute the compiled program, wrap the
// result. comp and byte differ only in where the compiled program came
// from — a direct lowering or a decoded artifact.
func runCompiled(p *Program, cp *comp.Program, inputs map[string]*tensor.COO, opt Options, kind EngineKind) (*Result, error) {
	mark := opt.Trace.Len()
	bound, err := p.plan.BindTraced(inputs, opt.BindCache, opt.Trace)
	if err != nil {
		return nil, err
	}
	dims, err := p.plan.OutputDims(inputs)
	if err != nil {
		return nil, err
	}
	out, err := cp.RunTraced(bound, dims, opt.Trace)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", p.name(), err)
	}
	return &Result{Output: out, Streams: map[string]*core.StreamStats{}, Engine: kind,
		Phases: opt.Trace.SpansSince(mark)}, nil
}
