package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"sam/internal/custard"
	"sam/internal/fiber"
	"sam/internal/lang"
	"sam/internal/tensor"
)

// scalarCOO builds an order-0 operand.
func scalarCOO(name string, v float64) *tensor.COO {
	c := tensor.NewCOO(name)
	c.Append(v)
	return c
}

// runCase compiles, simulates and checks one statement against the gold
// dense evaluator.
func runCase(t *testing.T, expr string, formats lang.Formats, sched lang.Schedule, inputs map[string]*tensor.COO) *Result {
	t.Helper()
	e, err := lang.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	g, err := custard.Compile(e, formats, sched)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	res, err := Run(g, inputs, Options{})
	if err != nil {
		t.Fatalf("simulate %q: %v", expr, err)
	}
	want, err := lang.Gold(e, inputs)
	if err != nil {
		t.Fatalf("gold %q: %v", expr, err)
	}
	if err := tensor.Equal(res.Output, want, 1e-9); err != nil {
		t.Errorf("%q (order %v): simulator disagrees with gold: %v", expr, sched.LoopOrder, err)
	}
	if res.Cycles <= 0 {
		t.Errorf("%q: nonpositive cycle count %d", expr, res.Cycles)
	}
	return res
}

// randomInputs generates inputs for every access of the statement with the
// given variable dimensions and density.
func randomInputs(t *testing.T, expr string, rng *rand.Rand, dims map[string]int, density float64) map[string]*tensor.COO {
	t.Helper()
	e := lang.MustParse(expr)
	inputs := map[string]*tensor.COO{}
	for _, a := range e.Accesses() {
		if _, ok := inputs[a.Tensor]; ok {
			continue
		}
		if len(a.Idx) == 0 {
			inputs[a.Tensor] = scalarCOO(a.Tensor, rng.Float64()+0.5)
			continue
		}
		ds := make([]int, len(a.Idx))
		for i, v := range a.Idx {
			d, ok := dims[v]
			if !ok {
				t.Fatalf("no dimension for variable %q", v)
			}
			ds[i] = d
		}
		total := 1
		for _, d := range ds {
			total *= d
		}
		nnz := int(density * float64(total))
		if nnz < 1 {
			nnz = 1
		}
		inputs[a.Tensor] = tensor.UniformRandom(a.Tensor, rng, nnz, ds...)
	}
	return inputs
}

// TestEndToEndTable1 simulates every Table 1 expression on random sparse
// inputs and compares against the gold evaluator.
func TestEndToEndTable1(t *testing.T) {
	dims := map[string]int{"i": 13, "j": 11, "k": 9, "l": 7}
	cases := []struct {
		name  string
		expr  string
		order []string
	}{
		{"SpMV", "x(i) = B(i,j) * c(j)", nil},
		{"SpMSpM-ikj", "X(i,j) = B(i,k) * C(k,j)", []string{"i", "k", "j"}},
		{"SpMSpM-ijk", "X(i,j) = B(i,k) * C(k,j)", []string{"i", "j", "k"}},
		{"SpMSpM-kij", "X(i,j) = B(i,k) * C(k,j)", []string{"k", "i", "j"}},
		{"SpMSpM-jik", "X(i,j) = B(i,k) * C(k,j)", []string{"j", "i", "k"}},
		{"SpMSpM-jki", "X(i,j) = B(i,k) * C(k,j)", []string{"j", "k", "i"}},
		{"SpMSpM-kji", "X(i,j) = B(i,k) * C(k,j)", []string{"k", "j", "i"}},
		{"SDDMM", "X(i,j) = B(i,j) * C(i,k) * D(j,k)", nil},
		{"InnerProd", "x = B(i,j,k) * C(i,j,k)", nil},
		{"TTV", "X(i,j) = B(i,j,k) * c(k)", nil},
		{"TTM", "X(i,j,k) = B(i,j,l) * C(k,l)", nil},
		{"MTTKRP", "X(i,j) = B(i,k,l) * C(j,k) * D(j,l)", nil},
		{"Residual", "x(i) = b(i) - C(i,j) * d(j)", nil},
		{"MatTransMul", "x(i) = alpha * B^T(i,j) * c(j) + beta * d(i)", nil},
		{"MMAdd", "X(i,j) = B(i,j) + C(i,j)", nil},
		{"Plus3", "X(i,j) = B(i,j) + C(i,j) + D(i,j)", nil},
		{"Plus2", "X(i,j,k) = B(i,j,k) + C(i,j,k)", nil},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				density := []float64{0.05, 0.2, 0.6}[seed-1]
				inputs := randomInputs(t, tc.expr, rng, dims, density)
				runCase(t, tc.expr, nil, lang.Schedule{LoopOrder: tc.order}, inputs)
			})
		}
	}
}

// TestEndToEndDenseOperands exercises dense (uncompressed) level formats
// co-iterated against compressed ones.
func TestEndToEndDenseOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := map[string]int{"i": 10, "j": 12, "k": 8}
	t.Run("SpMV-dense-vector", func(t *testing.T) {
		inputs := randomInputs(t, "x(i) = B(i,j) * c(j)", rng, dims, 0.3)
		formats := lang.Formats{"c": lang.Uniform(1, fiber.Dense)}
		runCase(t, "x(i) = B(i,j) * c(j)", formats, lang.Schedule{}, inputs)
	})
	t.Run("SDDMM-dense-factors", func(t *testing.T) {
		inputs := randomInputs(t, "X(i,j) = B(i,j) * C(i,k) * D(j,k)", rng, dims, 0.3)
		formats := lang.Formats{
			"C": lang.Uniform(2, fiber.Dense),
			"D": lang.Uniform(2, fiber.Dense),
		}
		runCase(t, "X(i,j) = B(i,j) * C(i,k) * D(j,k)", formats, lang.Schedule{}, inputs)
	})
	t.Run("SpMV-CSR", func(t *testing.T) {
		inputs := randomInputs(t, "x(i) = B(i,j) * c(j)", rng, dims, 0.3)
		formats := lang.Formats{"B": lang.CSR(2)}
		runCase(t, "x(i) = B(i,j) * c(j)", formats, lang.Schedule{}, inputs)
	})
}

// TestEndToEndLocators exercises the iterate-locate rewrite against dense
// operands (paper Section 4.2).
func TestEndToEndLocators(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dims := map[string]int{"i": 10, "j": 12, "k": 8}
	inputs := randomInputs(t, "X(i,j) = B(i,j) * C(i,k) * D(j,k)", rng, dims, 0.25)
	formats := lang.Formats{
		"C": lang.Uniform(2, fiber.Dense),
		"D": lang.Uniform(2, fiber.Dense),
	}
	runCase(t, "X(i,j) = B(i,j) * C(i,k) * D(j,k)", formats, lang.Schedule{UseLocators: true}, inputs)

	inputs2 := randomInputs(t, "x(i) = B(i,j) * c(j)", rng, dims, 0.25)
	formats2 := lang.Formats{"c": lang.Uniform(1, fiber.Dense)}
	runCase(t, "x(i) = B(i,j) * c(j)", formats2, lang.Schedule{UseLocators: true}, inputs2)
}

// TestEndToEndSkip exercises the coordinate-skipping (gallop) rewrite.
func TestEndToEndSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dims := map[string]int{"i": 40, "j": 30, "k": 20}
	for _, expr := range []string{
		"x(i) = b(i) * c(i)",
		"X(i,j) = B(i,k) * C(k,j)",
	} {
		inputs := randomInputs(t, expr, rng, dims, 0.2)
		runCase(t, expr, nil, lang.Schedule{UseSkip: true, LoopOrder: nil}, inputs)
	}
}

// TestEndToEndEmptyAndTinyInputs checks degenerate shapes: empty tensors,
// single elements, disjoint supports.
func TestEndToEndEmptyAndTinyInputs(t *testing.T) {
	mk := func(dims []int, pts ...[]int64) *tensor.COO {
		c := tensor.NewCOO("T", dims...)
		for i, p := range pts {
			c.Append(float64(i+1), p...)
		}
		c.Name = "T"
		return c
	}
	t.Run("disjoint-supports-mul", func(t *testing.T) {
		b := mk([]int{6}, []int64{0}, []int64{2})
		b.Name = "b"
		c := mk([]int{6}, []int64{1}, []int64{3})
		c.Name = "c"
		runCase(t, "x(i) = b(i) * c(i)", nil, lang.Schedule{}, map[string]*tensor.COO{"b": b, "c": c})
	})
	t.Run("disjoint-supports-add", func(t *testing.T) {
		b := mk([]int{6}, []int64{0})
		b.Name = "b"
		c := mk([]int{6}, []int64{5})
		c.Name = "c"
		runCase(t, "x(i) = b(i) + c(i)", nil, lang.Schedule{}, map[string]*tensor.COO{"b": b, "c": c})
	})
	t.Run("single-element-matmul", func(t *testing.T) {
		b := mk([]int{4, 4}, []int64{1, 2})
		b.Name = "B"
		c := mk([]int{4, 4}, []int64{2, 3})
		c.Name = "C"
		runCase(t, "X(i,j) = B(i,k) * C(k,j)", nil, lang.Schedule{LoopOrder: []string{"i", "k", "j"}},
			map[string]*tensor.COO{"B": b, "C": c})
	})
	t.Run("no-matching-k", func(t *testing.T) {
		b := mk([]int{4, 4}, []int64{1, 0})
		b.Name = "B"
		c := mk([]int{4, 4}, []int64{3, 3})
		c.Name = "C"
		runCase(t, "X(i,j) = B(i,k) * C(k,j)", nil, lang.Schedule{LoopOrder: []string{"i", "k", "j"}},
			map[string]*tensor.COO{"B": b, "C": c})
	})
}

// TestBoundedQueuesBackpressure checks that finite queues still compute the
// right answer, only more slowly (backpressure stalls, paper Section 6.4's
// finite-hardware modeling).
func TestBoundedQueuesBackpressure(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dims := map[string]int{"i": 16, "j": 14, "k": 10}
	expr := "X(i,j) = B(i,k) * C(k,j)"
	inputs := randomInputs(t, expr, rng, dims, 0.25)

	e := lang.MustParse(expr)
	g, err := custard.Compile(e, nil, lang.Schedule{LoopOrder: []string{"i", "k", "j"}})
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := Run(g, inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Run(g, inputs, Options{QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tensor.Equal(unbounded.Output, bounded.Output, 1e-9); err != nil {
		t.Errorf("bounded queues changed the result: %v", err)
	}
	if bounded.Cycles < unbounded.Cycles {
		t.Errorf("bounded queues ran faster (%d) than unbounded (%d)", bounded.Cycles, unbounded.Cycles)
	}
}

// TestStreamStatsAccounting checks the Figure 14 bookkeeping invariant:
// data + stop + done + empty + idle equals total cycles on every monitored
// stream.
func TestStreamStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dims := map[string]int{"i": 12, "j": 10}
	expr := "X(i,j) = B(i,j)"
	inputs := randomInputs(t, expr, rng, dims, 0.3)
	res := runCase(t, expr, nil, lang.Schedule{}, inputs)
	if len(res.Streams) == 0 {
		t.Fatal("no stream statistics collected")
	}
	for label, s := range res.Streams {
		if got := s.Total(); got != int64(res.Cycles) {
			t.Errorf("stream %q accounts %d cycles, want %d", label, got, res.Cycles)
		}
	}
}

// TestEndToEndBitvector exercises the bitvector pipelines of Figure 13: the
// flat order-1 "BV" configuration and the order-2 bit-tree "BV w/ split".
func TestEndToEndBitvector(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	expr := "x(i) = b(i) * c(i)"
	e := lang.MustParse(expr)
	b := tensor.UniformRandom("b", rng, 40, 200)
	c := tensor.UniformRandom("c", rng, 40, 200)
	inputs := map[string]*tensor.COO{"b": b, "c": c}
	want, err := lang.Gold(e, inputs)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("flat", func(t *testing.T) {
		g, err := custard.CompileBitvector(e, lang.Formats{
			"b": lang.Uniform(1, fiber.Bitvector),
			"c": lang.Uniform(1, fiber.Bitvector),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, inputs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := tensor.Equal(res.Output, want, 1e-9); err != nil {
			t.Errorf("flat bitvector result: %v", err)
		}
	})

	t.Run("bit-tree", func(t *testing.T) {
		bs, err := b.Split("b", 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := c.Split("c", 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		e2 := lang.MustParse("x(i0,i1) = b(i0,i1) * c(i0,i1)")
		g, err := custard.CompileBitvector(e2, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, map[string]*tensor.COO{"b": bs, "c": cs}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Unsplit the result to compare against the flat gold.
		flat := tensor.NewCOO("x", 200)
		chunk := int64(bs.Dims[1])
		for _, p := range res.Output.Pts {
			flat.Append(p.Val, p.Crd[0]*chunk+p.Crd[1])
		}
		flat.Sort()
		if err := tensor.Equal(flat, want, 1e-9); err != nil {
			t.Errorf("bit-tree result: %v", err)
		}
	})
}

// TestEndToEndRepeatedTensor checks that a tensor used twice (X = B * B)
// binds as two independent operands with separate mode orders.
func TestEndToEndRepeatedTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	b := tensor.UniformRandom("B", rng, 60, 15, 15)
	inputs := map[string]*tensor.COO{"B": b}
	runCase(t, "X(i,j) = B(i,k) * B(k,j)", nil,
		lang.Schedule{LoopOrder: []string{"i", "k", "j"}}, inputs)
	runCase(t, "x = B(i,j) * B(i,j)", nil, lang.Schedule{}, inputs)
}

// TestEndToEndLinkedListRoundTrip writes an output with a linked-list level
// and feeds it back through another kernel.
func TestEndToEndLinkedListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	b := tensor.UniformRandom("B", rng, 80, 20, 16)
	c := tensor.UniformRandom("C", rng, 80, 16, 20)
	formats := lang.Formats{
		"Y": {Levels: []fiber.Format{fiber.Compressed, fiber.LinkedList, fiber.Compressed}},
	}
	e := lang.MustParse("Y(i,k,j) = B(i,k) * C(k,j)")
	g, err := custard.Compile(e, formats, lang.Schedule{LoopOrder: []string{"k", "i", "j"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, map[string]*tensor.COO{"B": b, "C": c}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lang.Gold(e, map[string]*tensor.COO{"B": b, "C": c})
	if err != nil {
		t.Fatal(err)
	}
	if err := tensor.Equal(res.Output, want, 1e-9); err != nil {
		t.Fatalf("multiply phase: %v", err)
	}
	// Merge phase consumes the intermediate through linked-list storage.
	runCase(t, "X(i,j) = Y(i,k,j)", formats, lang.Schedule{},
		map[string]*tensor.COO{"Y": res.Output})
}
