// Package graph defines the SAM dataflow graph intermediate representation:
// the typed blocks and streams that Custard compiles tensor index notation
// into, and that the simulator executes. Graphs can be validated
// structurally and exported to Graphviz DOT (the representation the paper's
// artifact stores SAM graphs in).
package graph

import (
	"fmt"

	"sam/internal/fiber"
	"sam/internal/lang"
)

// Kind enumerates SAM block types (paper Sections 3 and 4).
type Kind int

// Block kinds.
const (
	Root Kind = iota
	Scanner
	BVScanner
	Repeat
	Intersect
	GallopIntersect
	Union
	Locate
	Array
	ALU
	Reduce
	CrdDrop
	CrdWriter
	ValsWriter
	BVIntersect
	VecLoad
	VecALU
	BVExpand
	BVConvert
	BVWriter
	VecValsWriter
	Parallelize
	Serialize
	SerializePair
	LaneReduce
)

func (k Kind) String() string {
	switch k {
	case Root:
		return "root"
	case Scanner:
		return "scanner"
	case BVScanner:
		return "bvscanner"
	case Repeat:
		return "repeat"
	case Intersect:
		return "intersect"
	case GallopIntersect:
		return "gallop"
	case Union:
		return "union"
	case Locate:
		return "locate"
	case Array:
		return "array"
	case ALU:
		return "alu"
	case Reduce:
		return "reduce"
	case CrdDrop:
		return "crddrop"
	case CrdWriter:
		return "crdwriter"
	case ValsWriter:
		return "valswriter"
	case BVIntersect:
		return "bvintersect"
	case VecLoad:
		return "vecload"
	case VecALU:
		return "vecalu"
	case BVExpand:
		return "bvexpand"
	case BVConvert:
		return "bvconvert"
	case BVWriter:
		return "bvwriter"
	case VecValsWriter:
		return "vecvalswriter"
	case Parallelize:
		return "parallelize"
	case Serialize:
		return "serialize"
	case SerializePair:
		return "serializepair"
	case LaneReduce:
		return "lanereduce"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is one SAM block instance.
type Node struct {
	ID    int
	Kind  Kind
	Label string

	// Tensor binding for scanners, arrays, locators, writers; the gallop
	// intersecter binds a second tensor/level pair. Parallelizers and
	// serializers reuse Level as the fork/join granularity: the lane
	// advances after each stop token of exactly Level, or after each data
	// token when Level is -1 (element granularity, used at the outermost
	// loop level).
	Tensor  string
	Level   int
	TensorB string
	LevelB  int

	// Format of the scanned or written level.
	Format fiber.Format

	// Ways is the arity of intersecters/unioners and the lane count of
	// parallelizers, serializers and lane combiners.
	Ways int

	// Op is the ALU operation.
	Op lang.Op

	// RedN is the reducer dimension n (0 scalar, 1 vector, 2 matrix).
	RedN int

	// DropVal selects the value mode of a coordinate dropper.
	DropVal bool

	// OutLevel is the output level index a writer materializes.
	OutLevel int
}

// Edge is one stream wire between two block ports.
type Edge struct {
	From     int
	FromPort string
	To       int
	ToPort   string
}

// DimRef names an input tensor mode whose size defines an output dimension.
type DimRef struct {
	Tensor string
	Mode   int
}

// Binding maps one operand (a tensor access occurrence, the unit scanners
// and arrays are wired to) to its source tensor, the mode order its levels
// are stored in (level d holds source mode ModeOrder[d]), and its per-level
// storage formats.
type Binding struct {
	Operand   string
	Source    string
	ModeOrder []int
	Formats   []fiber.Format
}

// Graph is a complete SAM dataflow graph plus the output-tensor metadata the
// simulator needs to assemble the result.
type Graph struct {
	Name  string
	Expr  string
	Nodes []*Node
	Edges []*Edge

	// OptLevel records the optimization level applied to the graph (0 = as
	// lowered, the paper-faithful form). internal/opt sets it; the output
	// assemblers use it to decide whether all-empty levels need their fiber
	// counts reconciled (bypassed coordinate droppers make them ambiguous),
	// so unoptimized graphs keep the strict validation tripwire.
	OptLevel int

	Bindings []Binding

	// Output metadata: the result tensor's name, level formats and level
	// dimensions (in the loop order the graph produces them), the output
	// variables in that order, and the left-hand-side variable order the
	// user declared.
	OutputTensor  string
	OutputFormats []fiber.Format
	OutputDims    []DimRef
	OutputVars    []string
	LHSVars       []string
}

// Clone returns a deep copy of the graph: nodes, edges, bindings, and output
// metadata are all fresh allocations, so rewriting passes can transform the
// copy while callers keep the original for differential comparison.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Name: g.Name, Expr: g.Expr, OptLevel: g.OptLevel,
		OutputTensor:  g.OutputTensor,
		OutputFormats: append([]fiber.Format(nil), g.OutputFormats...),
		OutputDims:    append([]DimRef(nil), g.OutputDims...),
		OutputVars:    append([]string(nil), g.OutputVars...),
		LHSVars:       append([]string(nil), g.LHSVars...),
	}
	c.Nodes = make([]*Node, len(g.Nodes))
	for i, n := range g.Nodes {
		cp := *n
		c.Nodes[i] = &cp
	}
	c.Edges = make([]*Edge, len(g.Edges))
	for i, e := range g.Edges {
		cp := *e
		c.Edges[i] = &cp
	}
	c.Bindings = make([]Binding, len(g.Bindings))
	for i, b := range g.Bindings {
		cp := b
		cp.ModeOrder = append([]int(nil), b.ModeOrder...)
		cp.Formats = append([]fiber.Format(nil), b.Formats...)
		c.Bindings[i] = cp
	}
	return c
}

// AddNode appends a node, assigning its ID.
func (g *Graph) AddNode(n *Node) *Node {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n
}

// Connect adds an edge between two ports.
func (g *Graph) Connect(from *Node, fromPort string, to *Node, toPort string) {
	g.Edges = append(g.Edges, &Edge{From: from.ID, FromPort: fromPort, To: to.ID, ToPort: toPort})
}

// Count returns the number of nodes of the given kind.
func (g *Graph) Count(k Kind) int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind == k {
			n++
		}
	}
	return n
}

// InPorts lists the input port names required by a node.
func InPorts(n *Node) []string {
	switch n.Kind {
	case Root:
		return nil
	case Scanner, BVScanner:
		return []string{"ref"}
	case Repeat:
		return []string{"crd", "ref"}
	case Intersect, Union:
		ps := make([]string, 0, 2*n.Ways)
		for i := 0; i < n.Ways; i++ {
			ps = append(ps, fmt.Sprintf("crd%d", i), fmt.Sprintf("ref%d", i))
		}
		return ps
	case GallopIntersect:
		return []string{"ref0", "ref1"}
	case Locate:
		return []string{"crd", "ref", "fiber"}
	case Array:
		return []string{"ref"}
	case ALU, VecALU:
		return []string{"a", "b"}
	case Reduce:
		return reducePorts(n)
	case CrdDrop:
		if n.DropVal {
			return []string{"outer", "val"}
		}
		return []string{"outer", "inner"}
	case CrdWriter:
		return []string{"crd"}
	case ValsWriter:
		return []string{"val"}
	case BVIntersect:
		return []string{"bv0", "ref0", "bv1", "ref1"}
	case VecLoad, BVExpand:
		return []string{"bv", "mask", "base"}
	case BVConvert:
		return []string{"crd"}
	case BVWriter:
		return []string{"bv"}
	case VecValsWriter:
		return []string{"bv", "val"}
	case Parallelize:
		return []string{"in"}
	case Serialize:
		ps := make([]string, n.Ways)
		for i := range ps {
			ps[i] = fmt.Sprintf("in%d", i)
		}
		return append(ps, drvPorts(n)...)
	case SerializePair:
		ps := make([]string, 0, 2*n.Ways)
		for i := 0; i < n.Ways; i++ {
			ps = append(ps, fmt.Sprintf("crd%d", i))
		}
		for i := 0; i < n.Ways; i++ {
			ps = append(ps, fmt.Sprintf("val%d", i))
		}
		return append(ps, drvPorts(n)...)
	case LaneReduce:
		ps := make([]string, 0, n.Ways*(n.RedN+1))
		for s := 0; s < n.Ways; s++ {
			for q := 0; q < n.RedN; q++ {
				ps = append(ps, fmt.Sprintf("crd%d_%d", q, s))
			}
			ps = append(ps, fmt.Sprintf("val%d", s))
		}
		return ps
	}
	return nil
}

// OutPorts lists the output port names produced by a node.
func OutPorts(n *Node) []string {
	switch n.Kind {
	case Root:
		return []string{"ref"}
	case Scanner:
		return []string{"crd", "ref"}
	case BVScanner:
		return []string{"bv", "ref"}
	case Repeat:
		return []string{"ref"}
	case Intersect, Union:
		ps := []string{"crd"}
		for i := 0; i < n.Ways; i++ {
			ps = append(ps, fmt.Sprintf("ref%d", i))
		}
		return ps
	case GallopIntersect:
		return []string{"crd", "ref0", "ref1"}
	case Locate:
		return []string{"crd", "ref", "loc"}
	case Array, ALU, VecALU, VecLoad:
		return []string{"val"}
	case Reduce:
		return reducePorts(n)
	case CrdDrop:
		if n.DropVal {
			return []string{"outer", "val"}
		}
		return []string{"outer", "inner"}
	case BVIntersect:
		return []string{"bv", "mask0", "base0", "mask1", "base1"}
	case BVExpand:
		return []string{"ref"}
	case BVConvert:
		return []string{"bv"}
	case Parallelize:
		ps := make([]string, n.Ways)
		for i := range ps {
			ps[i] = fmt.Sprintf("out%d", i)
		}
		return ps
	case Serialize:
		return []string{"out"}
	case SerializePair:
		return []string{"crd", "val"}
	case LaneReduce:
		ps := make([]string, 0, n.RedN+1)
		for q := 0; q < n.RedN; q++ {
			ps = append(ps, fmt.Sprintf("crd%d", q))
		}
		return append(ps, "val")
	}
	return nil
}

// Validate checks structural well-formedness: every required input port has
// exactly one incoming edge, every edge references existing nodes and legal
// ports, and every output port of a non-sink node drives at least one input.
func (g *Graph) Validate() error {
	type portKey struct {
		node int
		port string
	}
	inCount := map[portKey]int{}
	outUsed := map[portKey]bool{}
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			return fmt.Errorf("graph: edge references missing node: %+v", e)
		}
		from, to := g.Nodes[e.From], g.Nodes[e.To]
		if !contains(OutPorts(from), e.FromPort) {
			return fmt.Errorf("graph: node %d (%s) has no output port %q", from.ID, from.Label, e.FromPort)
		}
		if !contains(InPorts(to), e.ToPort) {
			return fmt.Errorf("graph: node %d (%s) has no input port %q", to.ID, to.Label, e.ToPort)
		}
		inCount[portKey{e.To, e.ToPort}]++
		outUsed[portKey{e.From, e.FromPort}] = true
	}
	for _, n := range g.Nodes {
		for _, p := range InPorts(n) {
			c := inCount[portKey{n.ID, p}]
			if c != 1 {
				return fmt.Errorf("graph: node %d (%s) input port %q has %d drivers, want 1", n.ID, n.Label, p, c)
			}
		}
	}
	return nil
}

// drvPorts lists a serializer's per-lane rotation-driver ports. Serializers
// joining streams deeper than the fork level (Level >= 0) are driven by
// copies of the forked outermost coordinate stream, whose data tokens count
// the chunks each lane owes; element-granularity joins (Level < 0) drive
// themselves.
func drvPorts(n *Node) []string {
	if n.Level < 0 {
		return nil
	}
	ps := make([]string, n.Ways)
	for i := range ps {
		ps[i] = fmt.Sprintf("drv%d", i)
	}
	return ps
}

// reducePorts lists a reducer's ports: n coordinate streams plus values.
func reducePorts(n *Node) []string {
	switch n.RedN {
	case 0:
		return []string{"val"}
	case 1:
		return []string{"crd", "val"}
	default:
		ps := make([]string, 0, n.RedN+1)
		for i := 0; i < n.RedN; i++ {
			ps = append(ps, fmt.Sprintf("crd%d", i))
		}
		return append(ps, "val")
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
