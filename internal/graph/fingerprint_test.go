package graph_test

import (
	"testing"

	"sam/internal/custard"
	"sam/internal/fiber"
	"sam/internal/graph"
	"sam/internal/lang"
)

func compile(t *testing.T, expr string, formats lang.Formats, sched lang.Schedule) *graph.Graph {
	t.Helper()
	e, err := lang.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	g, err := custard.Compile(e, formats, sched)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	return g
}

// TestFingerprintDistinguishesConfigurations compiles a battery of
// (expression, format, schedule) configurations — spanning loop orders, lane
// counts, storage formats, optimization rewrites, and the bitvector
// pipeline — and checks that every configuration fingerprints differently
// and that recompiling the same configuration reproduces the same
// fingerprint.
func TestFingerprintDistinguishesConfigurations(t *testing.T) {
	spmspm := "X(i,j) = B(i,k) * C(k,j)"
	spmv := "x(i) = B(i,j) * c(j)"
	type cfg struct {
		name    string
		compile func() *graph.Graph
	}
	cfgs := []cfg{
		{"spmv", func() *graph.Graph { return compile(t, spmv, nil, lang.Schedule{}) }},
		{"spmv-par2", func() *graph.Graph { return compile(t, spmv, nil, lang.Schedule{Par: 2}) }},
		{"spmv-par4", func() *graph.Graph { return compile(t, spmv, nil, lang.Schedule{Par: 4}) }},
		{"spmv-order-ji", func() *graph.Graph {
			return compile(t, spmv, nil, lang.Schedule{LoopOrder: []string{"j", "i"}})
		}},
		{"spmv-skip", func() *graph.Graph { return compile(t, spmv, nil, lang.Schedule{UseSkip: true}) }},
		{"spmv-csr", func() *graph.Graph {
			return compile(t, spmv, lang.Formats{"B": lang.CSR(2)}, lang.Schedule{})
		}},
		{"spmv-dense", func() *graph.Graph {
			return compile(t, spmv, lang.Formats{"B": lang.Uniform(2, fiber.Dense), "c": lang.Uniform(1, fiber.Dense)}, lang.Schedule{})
		}},
		{"spmspm-ijk", func() *graph.Graph {
			return compile(t, spmspm, nil, lang.Schedule{LoopOrder: []string{"i", "j", "k"}})
		}},
		{"spmspm-ikj", func() *graph.Graph {
			return compile(t, spmspm, nil, lang.Schedule{LoopOrder: []string{"i", "k", "j"}})
		}},
		{"spmspm-ikj-par4", func() *graph.Graph {
			return compile(t, spmspm, nil, lang.Schedule{LoopOrder: []string{"i", "k", "j"}, Par: 4})
		}},
		{"spmspm-locators", func() *graph.Graph {
			dense := lang.Formats{"B": lang.Uniform(2, fiber.Dense), "C": lang.Uniform(2, fiber.Dense)}
			return compile(t, spmspm, dense, lang.Schedule{UseLocators: true})
		}},
		{"elemmul-bitvector", func() *graph.Graph {
			e := lang.MustParse("x(i) = b(i) * c(i)")
			bv := lang.Formats{"b": lang.Uniform(1, fiber.Bitvector), "c": lang.Uniform(1, fiber.Bitvector)}
			g, err := custard.CompileBitvector(e, bv)
			if err != nil {
				t.Fatalf("compile bitvector: %v", err)
			}
			return g
		}},
	}
	seen := map[string]string{}
	for _, c := range cfgs {
		fp := c.compile().Fingerprint()
		if len(fp) != 32 {
			t.Fatalf("%s: fingerprint %q is not 128-bit hex", c.name, fp)
		}
		if prev, ok := seen[fp]; ok {
			t.Errorf("fingerprint collision: %s and %s both hash to %s", prev, c.name, fp)
		}
		seen[fp] = c.name
		if again := c.compile().Fingerprint(); again != fp {
			t.Errorf("%s: fingerprint unstable across recompiles: %s vs %s", c.name, fp, again)
		}
	}
}

// TestFingerprintSensitivity mutates individual fields of a compiled graph
// and checks the fingerprint moves; renaming the graph must not move it.
func TestFingerprintSensitivity(t *testing.T) {
	base := func() *graph.Graph { return compile(t, "x(i) = B(i,j) * c(j)", nil, lang.Schedule{}) }
	fp := base().Fingerprint()

	g := base()
	g.Name = "renamed"
	if g.Fingerprint() != fp {
		t.Errorf("renaming the graph changed the fingerprint")
	}

	mutations := map[string]func(*graph.Graph){
		"node format":  func(g *graph.Graph) { g.Nodes[1].Format = fiber.Bitvector },
		"node level":   func(g *graph.Graph) { g.Nodes[1].Level++ },
		"edge port":    func(g *graph.Graph) { g.Edges[0].FromPort += "x" },
		"edge target":  func(g *graph.Graph) { g.Edges[0].To = (g.Edges[0].To + 1) % len(g.Nodes) },
		"binding mode": func(g *graph.Graph) { b := &g.Bindings[0]; b.ModeOrder = []int{1, 0} },
		"expr":         func(g *graph.Graph) { g.Expr += " " },
		"output tensor": func(g *graph.Graph) {
			g.OutputTensor = "y"
		},
	}
	for name, mutate := range mutations {
		m := base()
		mutate(m)
		if m.Fingerprint() == fp {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
}

// TestFingerprintNoFieldAliasing checks the length-prefixed serialization:
// shifting a character between adjacent string fields must change the hash.
func TestFingerprintNoFieldAliasing(t *testing.T) {
	g1 := &graph.Graph{Nodes: []*graph.Node{{Label: "ab", Tensor: "c"}}}
	g2 := &graph.Graph{Nodes: []*graph.Node{{Label: "a", Tensor: "bc"}}}
	if g1.Fingerprint() == g2.Fingerprint() {
		t.Fatalf("adjacent string fields alias in the fingerprint")
	}
}
