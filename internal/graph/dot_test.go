package graph_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sam/internal/graph"
	"sam/internal/lang"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden DOT files")

// TestDOTGolden pins the Graphviz rendering of parallel graphs against
// golden files, covering the Parallelize, Serialize, SerializePair, and
// LaneReduce blocks introduced with Schedule.Par: spmspm_par2 joins kept
// output levels through serializers, scalar_par2 reduces the outermost
// variable through a lane combiner. Regenerate with go test -run DOTGolden
// -update after an intentional rendering change.
func TestDOTGolden(t *testing.T) {
	cases := []struct {
		name  string
		expr  string
		par   int
		kinds []graph.Kind
	}{
		{"spmspm_par2", "X(i,j) = B(i,k) * C(k,j)", 2,
			[]graph.Kind{graph.Parallelize, graph.Serialize, graph.SerializePair}},
		{"scalar_par2", "x = B(i,j) * c(j)", 2,
			[]graph.Kind{graph.Parallelize, graph.LaneReduce}},
	}
	for _, c := range cases {
		g := compile(t, c.expr, nil, lang.Schedule{Par: c.par})
		for _, k := range c.kinds {
			if g.Count(k) == 0 {
				t.Errorf("%s: graph has no %v block; the golden no longer covers it", c.name, k)
			}
		}
		got := g.DOT()
		path := filepath.Join("testdata", c.name+".dot")
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", c.name, err)
		}
		if got != string(want) {
			t.Errorf("%s: DOT rendering drifted from %s;\nrun go test ./internal/graph -run DOTGolden -update if intentional.\ngot:\n%s", c.name, path, got)
		}
	}
}
