package graph

import (
	"fmt"
	"sort"
	"strings"
)

// dotStyle maps block kinds to Graphviz appearance, mirroring the coloring
// convention of the paper's figures (scanners and writers per tensor path,
// compute blocks neutral).
func dotStyle(k Kind) string {
	switch k {
	case Root:
		return `shape=point`
	case Scanner, BVScanner:
		return `shape=box style=filled fillcolor="#c9b8ea"`
	case Repeat:
		return `shape=box style=filled fillcolor="#b5d3f0"`
	case Intersect, GallopIntersect, BVIntersect:
		return `shape=invtrapezium style=filled fillcolor="#f2e3a4"`
	case Union:
		return `shape=trapezium style=filled fillcolor="#f2e3a4"`
	case Locate:
		return `shape=box style=filled fillcolor="#f2c7a4"`
	case Array, VecLoad:
		return `shape=cylinder style=filled fillcolor="#dddddd"`
	case ALU, VecALU:
		return `shape=circle style=filled fillcolor="#c4e3c4"`
	case Reduce:
		return `shape=doublecircle style=filled fillcolor="#c4e3c4"`
	case CrdDrop:
		return `shape=diamond style=filled fillcolor="#e8b4b4"`
	case CrdWriter, ValsWriter, BVWriter, VecValsWriter:
		return `shape=box style=filled fillcolor="#f5c78f"`
	case Parallelize, Serialize, SerializePair:
		return `shape=house style=filled fillcolor="#bfe6e0"`
	case LaneReduce:
		return `shape=invhouse style=filled fillcolor="#bfe6e0"`
	default:
		return `shape=box`
	}
}

// edgeStyle renders reference streams stippled, coordinate streams solid and
// value streams bold, matching Figure 4's legend.
func edgeStyle(port string) string {
	switch {
	case strings.HasPrefix(port, "ref") || port == "loc" || strings.HasPrefix(port, "base") || port == "fiber":
		return `style=dashed`
	case strings.HasPrefix(port, "val") || port == "a" || port == "b":
		return `style=bold`
	default:
		return `style=solid`
	}
}

// DOT renders the graph in Graphviz format.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	fmt.Fprintf(&b, "  rankdir=LR;\n")
	if g.Expr != "" {
		fmt.Fprintf(&b, "  label=%q;\n", g.Expr)
	}
	for _, n := range g.Nodes {
		label := n.Label
		if label == "" {
			label = n.Kind.String()
		}
		fmt.Fprintf(&b, "  n%d [label=%q %s];\n", n.ID, label, dotStyle(n.Kind))
	}
	edges := append([]*Edge(nil), g.Edges...)
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q %s];\n", e.From, e.To, e.FromPort, edgeStyle(e.FromPort))
	}
	fmt.Fprintf(&b, "}\n")
	return b.String()
}
