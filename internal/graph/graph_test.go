package graph

import (
	"strings"
	"testing"

	"sam/internal/fiber"
)

// tinyGraph builds root -> scanner -> writer.
func tinyGraph() (*Graph, *Node, *Node, *Node) {
	g := &Graph{Name: "t"}
	root := g.AddNode(&Node{Kind: Root, Label: "Root B"})
	sc := g.AddNode(&Node{Kind: Scanner, Label: "Scanner B.i", Tensor: "B", Format: fiber.Compressed})
	wr := g.AddNode(&Node{Kind: CrdWriter, Label: "Writer X.i", Tensor: "X"})
	return g, root, sc, wr
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	g, root, sc, wr := tinyGraph()
	g.Connect(root, "ref", sc, "ref")
	g.Connect(sc, "crd", wr, "crd")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsUnconnectedInput(t *testing.T) {
	g, root, sc, _ := tinyGraph()
	g.Connect(root, "ref", sc, "ref")
	if err := g.Validate(); err == nil {
		t.Error("writer with no input accepted")
	}
}

func TestValidateRejectsDoubleDriver(t *testing.T) {
	g, root, sc, wr := tinyGraph()
	g.Connect(root, "ref", sc, "ref")
	g.Connect(sc, "crd", wr, "crd")
	g.Connect(sc, "ref", wr, "crd") // second driver on the same port
	if err := g.Validate(); err == nil {
		t.Error("doubly-driven input accepted")
	}
}

func TestValidateRejectsBadPorts(t *testing.T) {
	g, root, sc, wr := tinyGraph()
	g.Connect(root, "nope", sc, "ref")
	g.Connect(sc, "crd", wr, "crd")
	if err := g.Validate(); err == nil {
		t.Error("bad output port accepted")
	}
	g2, root2, sc2, wr2 := tinyGraph()
	g2.Connect(root2, "ref", sc2, "bogus")
	g2.Connect(sc2, "crd", wr2, "crd")
	if err := g2.Validate(); err == nil {
		t.Error("bad input port accepted")
	}
}

func TestPortTables(t *testing.T) {
	cases := []struct {
		node    *Node
		in, out int
	}{
		{&Node{Kind: Root}, 0, 1},
		{&Node{Kind: Scanner}, 1, 2},
		{&Node{Kind: Repeat}, 2, 1},
		{&Node{Kind: Intersect, Ways: 3}, 6, 4},
		{&Node{Kind: Union, Ways: 2}, 4, 3},
		{&Node{Kind: GallopIntersect}, 2, 3},
		{&Node{Kind: Locate}, 3, 3},
		{&Node{Kind: Array}, 1, 1},
		{&Node{Kind: ALU}, 2, 1},
		{&Node{Kind: Reduce, RedN: 0}, 1, 1},
		{&Node{Kind: Reduce, RedN: 1}, 2, 2},
		{&Node{Kind: Reduce, RedN: 2}, 3, 3},
		{&Node{Kind: CrdDrop}, 2, 2},
		{&Node{Kind: CrdDrop, DropVal: true}, 2, 2},
		{&Node{Kind: CrdWriter}, 1, 0},
		{&Node{Kind: ValsWriter}, 1, 0},
		{&Node{Kind: BVIntersect}, 4, 5},
		{&Node{Kind: VecLoad}, 3, 1},
		{&Node{Kind: Parallelize, Ways: 4}, 1, 4},
		{&Node{Kind: Serialize, Ways: 4, Level: -1}, 4, 1},
		// Deep joins (Level >= 0) carry per-lane rotation-driver ports.
		{&Node{Kind: Serialize, Ways: 4, Level: 0}, 8, 1},
		{&Node{Kind: SerializePair, Ways: 4, Level: -1}, 8, 2},
		{&Node{Kind: SerializePair, Ways: 4, Level: 1}, 12, 2},
		{&Node{Kind: LaneReduce, Ways: 2, RedN: 2}, 6, 3},
	}
	for _, tc := range cases {
		if got := len(InPorts(tc.node)); got != tc.in {
			t.Errorf("%v: %d input ports, want %d", tc.node.Kind, got, tc.in)
		}
		if got := len(OutPorts(tc.node)); got != tc.out {
			t.Errorf("%v: %d output ports, want %d", tc.node.Kind, got, tc.out)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g, root, sc, wr := tinyGraph()
	g.Expr = "X(i) = B(i)"
	g.Connect(root, "ref", sc, "ref")
	g.Connect(sc, "crd", wr, "crd")
	dot := g.DOT()
	for _, want := range []string{"digraph", "Scanner B.i", "Writer X.i", "->", "X(i) = B(i)"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestCount(t *testing.T) {
	g, _, _, _ := tinyGraph()
	if g.Count(Scanner) != 1 || g.Count(Union) != 0 {
		t.Error("Count miscounts")
	}
}
