package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// Fingerprint returns a canonical 128-bit hex hash of the graph's complete
// executable structure: every node with all of its parameters (kind, tensor
// and level bindings, storage format, arity, ALU op, reducer dimension,
// dropper mode, output level), every edge with its ports, the operand
// bindings (source tensor, mode order, per-level formats), and the output
// metadata. The graph name is excluded — it labels runs, it does not change
// what executes — but the source expression is included, so programs
// compiled from different statements never share a fingerprint even if they
// lower to isomorphic graphs.
//
// Two graphs share a fingerprint exactly when this serialized structure is
// identical, which makes the fingerprint usable as a compiled-program cache
// key: it distinguishes storage formats (including bitvector pipelines),
// loop orders, lane counts (Schedule.Par changes the replicated sub-graph),
// and optimization rewrites (gallop, locators). OptLevel is part of the
// structure: it selects assembly-time behavior (empty-level reconciliation),
// so an optimized graph never aliases an unoptimized one even when the
// pipeline rewrote nothing.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	w := fpWriter{h: h}
	w.str(g.Expr)
	w.num(g.OptLevel)
	w.num(len(g.Nodes))
	for _, n := range g.Nodes {
		w.num(int(n.Kind))
		w.str(n.Label)
		w.str(n.Tensor)
		w.num(n.Level)
		w.str(n.TensorB)
		w.num(n.LevelB)
		w.num(int(n.Format))
		w.num(n.Ways)
		w.num(int(n.Op))
		w.num(n.RedN)
		w.bool(n.DropVal)
		w.num(n.OutLevel)
	}
	w.num(len(g.Edges))
	for _, e := range g.Edges {
		w.num(e.From)
		w.str(e.FromPort)
		w.num(e.To)
		w.str(e.ToPort)
	}
	w.num(len(g.Bindings))
	for _, b := range g.Bindings {
		w.str(b.Operand)
		w.str(b.Source)
		w.num(len(b.ModeOrder))
		for _, m := range b.ModeOrder {
			w.num(m)
		}
		w.num(len(b.Formats))
		for _, f := range b.Formats {
			w.num(int(f))
		}
	}
	w.str(g.OutputTensor)
	w.num(len(g.OutputFormats))
	for _, f := range g.OutputFormats {
		w.num(int(f))
	}
	w.num(len(g.OutputDims))
	for _, d := range g.OutputDims {
		w.str(d.Tensor)
		w.num(d.Mode)
	}
	w.strs(g.OutputVars)
	w.strs(g.LHSVars)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// fpWriter streams values into the hash with explicit length prefixes, so
// adjacent fields can never alias (e.g. "ab"+"c" vs "a"+"bc").
type fpWriter struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

func (w *fpWriter) num(v int) {
	n := binary.PutVarint(w.buf[:], int64(v))
	w.h.Write(w.buf[:n])
}

func (w *fpWriter) bool(v bool) {
	if v {
		w.num(1)
	} else {
		w.num(0)
	}
}

func (w *fpWriter) str(s string) {
	w.num(len(s))
	w.h.Write([]byte(s))
}

func (w *fpWriter) strs(ss []string) {
	w.num(len(ss))
	for _, s := range ss {
		w.str(s)
	}
}
