// Package flow executes SAM dataflow graphs as concurrent goroutine
// pipelines: every block is a goroutine, every stream a channel, mirroring
// the paper's streaming dataflow abstraction directly in Go's CSP model.
//
// The block semantics are implemented independently from the cycle-stepped
// state machines in internal/core; the two executors are differentially
// tested against each other and against the dense gold evaluator. The flow
// executor computes functional results only (no cycle counts) and is the
// natural "binding" of SAM graphs onto a concurrent runtime.
package flow

import (
	"fmt"
	"sync"

	"sam/internal/fiber"
	"sam/internal/token"
)

// Stream is a channel of SAM tokens terminated by a done token.
type Stream <-chan token.Tok

// violation aborts a pipeline on a stream protocol violation; the runner
// recovers it into an error.
type violation struct{ err error }

func fail(format string, args ...any) {
	panic(violation{fmt.Errorf("flow: %s", fmt.Sprintf(format, args...))})
}

// Runner owns the goroutines of one pipeline and collects violations.
type Runner struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
}

// Go launches one block goroutine with violation recovery.
func (r *Runner) Go(f func()) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer func() {
			if p := recover(); p != nil {
				v, ok := p.(violation)
				if !ok {
					panic(p)
				}
				r.mu.Lock()
				r.errs = append(r.errs, v.err)
				r.mu.Unlock()
			}
		}()
		f()
	}()
}

// Wait joins all goroutines and returns the first violation, if any.
func (r *Runner) Wait() error {
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.errs) > 0 {
		return r.errs[0]
	}
	return nil
}

// chanBuf is the per-edge channel buffer; elastic buffers make every edge
// effectively unbounded so arbitrary DAG skew cannot deadlock.
const chanBuf = 64

// Elastic returns an unbounded edge: tokens are buffered in a goroutine so
// the producer never blocks on a slow consumer.
func (r *Runner) Elastic(in Stream) Stream {
	out := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(out)
		var buf []token.Tok
		inCh := (<-chan token.Tok)(in)
		for inCh != nil || len(buf) > 0 {
			if len(buf) == 0 {
				t, ok := <-inCh
				if !ok {
					return
				}
				buf = append(buf, t)
				continue
			}
			select {
			case t, ok := <-inCh:
				if !ok {
					inCh = nil
					continue
				}
				buf = append(buf, t)
			case out <- buf[0]:
				buf = buf[1:]
			}
		}
	})
	return out
}

// Source replays a recorded stream.
func (r *Runner) Source(s token.Stream) Stream {
	out := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(out)
		for _, t := range s {
			out <- t
		}
	})
	return out
}

// Root emits the depth-0 root reference stream.
func (r *Runner) Root() Stream { return r.Source(token.Root()) }

// Collect drains a stream into a recorded slice.
func Collect(in Stream) token.Stream {
	var out token.Stream
	for t := range in {
		out = append(out, t)
	}
	return out
}

// Fanout duplicates a stream to n consumers.
func (r *Runner) Fanout(in Stream, n int) []Stream {
	if n == 1 {
		return []Stream{in}
	}
	outs := make([]chan token.Tok, n)
	ret := make([]Stream, n)
	for i := range outs {
		outs[i] = make(chan token.Tok, chanBuf)
		ret[i] = r.Elastic(outs[i])
	}
	r.Go(func() {
		for t := range in {
			for _, o := range outs {
				o <- t
			}
		}
		for _, o := range outs {
			close(o)
		}
	})
	return ret
}

// next reads one token, failing on premature channel closure.
func next(in Stream, who string) token.Tok {
	t, ok := <-in
	if !ok {
		fail("%s: stream closed before done token", who)
	}
	return t
}

// Scanner is the level scanner (Definition 3.1) as a goroutine.
func (r *Runner) Scanner(name string, lvl fiber.Level, in Stream) (Stream, Stream) {
	crd := make(chan token.Tok, chanBuf)
	ref := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(crd)
		defer close(ref)
		sep := false
		emit := func(c, f token.Tok) {
			crd <- c
			ref <- f
		}
		for t := range in {
			switch t.Kind {
			case token.Val, token.Empty:
				if sep {
					emit(token.S(0), token.S(0))
				}
				if t.IsVal() {
					f := int(t.N)
					n := lvl.FiberLen(f)
					for i := 0; i < n; i++ {
						emit(token.C(lvl.Coord(f, i)), token.C(lvl.ChildRef(f, i)))
					}
				}
				sep = true
			case token.Stop:
				sep = false
				emit(token.S(t.StopLevel()+1), token.S(t.StopLevel()+1))
			case token.Done:
				if sep {
					emit(token.S(0), token.S(0))
				}
				emit(token.D(), token.D())
				return
			}
		}
	})
	return crd, ref
}

// Repeater is the broadcast block (Definition 3.4) as a goroutine.
func (r *Runner) Repeater(name string, inCrd, inRef Stream) Stream {
	out := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(out)
		var cur token.Tok
		have := false
		for t := range inCrd {
			switch t.Kind {
			case token.Val:
				if !have {
					cur = next(inRef, name)
					if !cur.IsVal() && !cur.IsEmpty() {
						fail("%s: expected reference, got %v", name, cur)
					}
					have = true
				}
				out <- cur
			case token.Stop:
				m := t.StopLevel()
				if !have {
					// Either an empty fiber's reference or (for m >= 1) a
					// structural stop; reading decides.
					rt := next(inRef, name)
					switch {
					case rt.IsVal() || rt.IsEmpty():
						if m >= 1 {
							rs := next(inRef, name)
							if !rs.IsStop() || rs.StopLevel() != m-1 {
								fail("%s: misaligned ref stop %v for crd %v", name, rs, t)
							}
						}
					case rt.IsStop() && m >= 1 && rt.StopLevel() == m-1:
						// structural empty group; stop consumed
					default:
						fail("%s: misaligned ref token %v for crd stop %v", name, rt, t)
					}
				} else if m >= 1 {
					rs := next(inRef, name)
					if !rs.IsStop() || rs.StopLevel() != m-1 {
						fail("%s: misaligned ref stop %v for crd %v", name, rs, t)
					}
				}
				have = false
				out <- t
			case token.Done:
				if d := next(inRef, name); !d.IsDone() {
					fail("%s: ref stream not done: %v", name, d)
				}
				out <- token.D()
				return
			}
		}
	})
	return out
}

// Intersect is the m-ary intersecter (Definition 3.2) as a goroutine.
func (r *Runner) Intersect(name string, inCrd, inRef []Stream) (Stream, []Stream) {
	crd := make(chan token.Tok, chanBuf)
	refs := make([]chan token.Tok, len(inRef))
	refOut := make([]Stream, len(inRef))
	for i := range refs {
		refs[i] = make(chan token.Tok, chanBuf)
		refOut[i] = refs[i]
	}
	r.Go(func() {
		defer close(crd)
		for _, c := range refs {
			defer close(c)
		}
		m := len(inCrd)
		heads := make([]token.Tok, m)
		for i := range heads {
			heads[i] = next(inCrd[i], name)
		}
		advance := func(i int) {
			next(inRef[i], name) // refs move in lockstep
			heads[i] = next(inCrd[i], name)
		}
		advanceKeep := func(i int) token.Tok {
			rt := next(inRef[i], name)
			heads[i] = next(inCrd[i], name)
			return rt
		}
		for {
			nVal, nDone := 0, 0
			var minC int64
			stopLvl := -1
			for _, t := range heads {
				switch t.Kind {
				case token.Val:
					if nVal == 0 || t.N < minC {
						minC = t.N
					}
					nVal++
				case token.Stop:
					stopLvl = t.StopLevel()
				case token.Done:
					nDone++
				}
			}
			switch {
			case nDone == m:
				crd <- token.D()
				for i := range refs {
					next(inRef[i], name)
					refs[i] <- token.D()
				}
				return
			case nDone > 0:
				fail("%s: premature done", name)
			case nVal == m:
				all := true
				for _, t := range heads {
					if t.N != minC {
						all = false
					}
				}
				if all {
					crd <- token.C(minC)
					for i := range heads {
						refs[i] <- advanceKeep(i)
					}
					continue
				}
				for i, t := range heads {
					if t.IsVal() && t.N == minC {
						advance(i)
					}
				}
			case nVal == 0:
				crd <- token.S(stopLvl)
				for i := range heads {
					rt := advanceKeep(i)
					if !rt.IsStop() {
						fail("%s: ref misaligned at stop: %v", name, rt)
					}
					refs[i] <- rt
				}
			default:
				for i, t := range heads {
					if t.IsVal() {
						advance(i)
					}
				}
			}
		}
	})
	return crd, refOut
}

// Union is the m-ary unioner (Definition 3.3) as a goroutine.
func (r *Runner) Union(name string, inCrd, inRef []Stream) (Stream, []Stream) {
	crd := make(chan token.Tok, chanBuf)
	refs := make([]chan token.Tok, len(inRef))
	refOut := make([]Stream, len(inRef))
	for i := range refs {
		refs[i] = make(chan token.Tok, chanBuf)
		refOut[i] = refs[i]
	}
	r.Go(func() {
		defer close(crd)
		for _, c := range refs {
			defer close(c)
		}
		m := len(inCrd)
		heads := make([]token.Tok, m)
		for i := range heads {
			heads[i] = next(inCrd[i], name)
		}
		for {
			nVal, nDone := 0, 0
			var minC int64
			stopLvl := -1
			for _, t := range heads {
				switch t.Kind {
				case token.Val:
					if nVal == 0 || t.N < minC {
						minC = t.N
					}
					nVal++
				case token.Stop:
					stopLvl = t.StopLevel()
				case token.Done:
					nDone++
				}
			}
			switch {
			case nDone == m:
				crd <- token.D()
				for i := range refs {
					next(inRef[i], name)
					refs[i] <- token.D()
				}
				return
			case nDone > 0:
				fail("%s: premature done", name)
			case nVal == 0:
				crd <- token.S(stopLvl)
				for i := range heads {
					rt := next(inRef[i], name)
					if !rt.IsStop() {
						fail("%s: ref misaligned at stop: %v", name, rt)
					}
					refs[i] <- rt
					heads[i] = next(inCrd[i], name)
				}
			default:
				crd <- token.C(minC)
				for i, t := range heads {
					if t.IsVal() && t.N == minC {
						refs[i] <- next(inRef[i], name)
						heads[i] = next(inCrd[i], name)
					} else {
						refs[i] <- token.N()
					}
				}
			}
		}
	})
	return crd, refOut
}

// ArrayLoad is the array block in load mode (Definition 3.5).
func (r *Runner) ArrayLoad(name string, vals []float64, in Stream) Stream {
	out := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(out)
		for t := range in {
			switch t.Kind {
			case token.Val:
				if t.N < 0 || t.N >= int64(len(vals)) {
					fail("%s: reference %d out of range", name, t.N)
				}
				out <- token.V(vals[t.N])
			default:
				out <- t
				if t.IsDone() {
					return
				}
			}
		}
	})
	return out
}

// ALU combines two aligned value streams (Definition 3.6).
func (r *Runner) ALU(name string, op func(a, b float64) float64, inA, inB Stream) Stream {
	out := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(out)
		a := next(inA, name)
		b := next(inB, name)
		for {
			dataA := a.IsVal() || a.IsEmpty()
			dataB := b.IsVal() || b.IsEmpty()
			switch {
			// An orphan zero (a scalar reduction of a structurally empty
			// group, e.g. a parallel lane that received no fibers) has no
			// counterpart on the other operand: discard it, like the
			// droppers and reducers do.
			case a.IsVal() && a.V == 0 && (b.IsStop() || b.IsDone()):
				a = next(inA, name)
				continue
			case b.IsVal() && b.V == 0 && (a.IsStop() || a.IsDone()):
				b = next(inB, name)
				continue
			case dataA && dataB:
				if a.IsEmpty() && b.IsEmpty() {
					out <- token.N()
				} else {
					va, vb := 0.0, 0.0
					if a.IsVal() {
						va = a.V
					}
					if b.IsVal() {
						vb = b.V
					}
					out <- token.V(op(va, vb))
				}
			case a.IsStop() && b.IsStop() && a.StopLevel() == b.StopLevel():
				out <- a
			case a.IsDone() && b.IsDone():
				out <- token.D()
				return
			default:
				fail("%s: misaligned operands %v vs %v", name, a, b)
			}
			a = next(inA, name)
			b = next(inB, name)
		}
	})
	return out
}
