package flow_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sam/internal/custard"
	"sam/internal/fiber"
	"sam/internal/flow"
	"sam/internal/lang"
	"sam/internal/sim"
	"sam/internal/tensor"
	"sam/internal/token"
)

// TestScannerMatchesFigure2 checks the goroutine scanner against the paper's
// Figure 2 streams.
func TestScannerMatchesFigure2(t *testing.T) {
	ten, err := fiberFig1()
	if err != nil {
		t.Fatal(err)
	}
	r := &flow.Runner{}
	crdI, refI := r.Scanner("Bi", ten.Levels[0], r.Root())
	crdJ, refJ := r.Scanner("Bj", ten.Levels[1], refI)
	gotI := flow.Collect(crdI)
	gotJ := flow.Collect(crdJ)
	gotRefJ := flow.Collect(refJ)
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	if !token.Equal(gotI, token.MustParse("0 1 3 S0 D")) {
		t.Errorf("Bi crd = %s", gotI)
	}
	if !token.Equal(gotJ, token.MustParse("1 S0 0 2 S0 1 3 S1 D")) {
		t.Errorf("Bj crd = %s", gotJ)
	}
	if !token.Equal(gotRefJ, token.MustParse("0 S0 1 2 S0 3 4 S1 D")) {
		t.Errorf("Bj ref = %s", gotRefJ)
	}
}

func fiberFig1() (*fiber.Tensor, error) {
	c := tensor.NewCOO("B", 4, 4)
	c.Append(1, 0, 1)
	c.Append(2, 1, 0)
	c.Append(3, 1, 2)
	c.Append(4, 3, 1)
	c.Append(5, 3, 3)
	return c.Build(fiber.Compressed, fiber.Compressed)
}

// TestFlowMatchesCycleEngine differentially tests the goroutine executor
// against the cycle engine and the gold evaluator on the Table 1 battery.
func TestFlowMatchesCycleEngine(t *testing.T) {
	dims := map[string]int{"i": 12, "j": 10, "k": 8, "l": 6}
	cases := []struct {
		expr  string
		order []string
	}{
		{"x(i) = B(i,j) * c(j)", nil},
		{"X(i,j) = B(i,k) * C(k,j)", []string{"i", "k", "j"}},
		{"X(i,j) = B(i,k) * C(k,j)", []string{"i", "j", "k"}},
		{"X(i,j) = B(i,k) * C(k,j)", []string{"k", "i", "j"}},
		{"X(i,j) = B(i,j) * C(i,k) * D(j,k)", nil},
		{"x = B(i,j,k) * C(i,j,k)", nil},
		{"X(i,j) = B(i,j,k) * c(k)", nil},
		{"X(i,j,k) = B(i,j,l) * C(k,l)", nil},
		{"X(i,j) = B(i,k,l) * C(j,k) * D(j,l)", nil},
		{"x(i) = b(i) - C(i,j) * d(j)", nil},
		{"x(i) = alpha * B^T(i,j) * c(j) + beta * d(i)", nil},
		{"X(i,j) = B(i,j) + C(i,j)", nil},
		{"X(i,j) = B(i,j) + C(i,j) + D(i,j)", nil},
		{"X(i,j,k) = B(i,j,k) + C(i,j,k)", nil},
	}
	for ci, tc := range cases {
		for seed := int64(1); seed <= 2; seed++ {
			name := fmt.Sprintf("case%d/seed%d", ci, seed)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed * 31))
				e := lang.MustParse(tc.expr)
				inputs := map[string]*tensor.COO{}
				for _, a := range e.Accesses() {
					if _, ok := inputs[a.Tensor]; ok {
						continue
					}
					if len(a.Idx) == 0 {
						s := tensor.NewCOO(a.Tensor)
						s.Append(rng.Float64() + 0.5)
						inputs[a.Tensor] = s
						continue
					}
					ds := make([]int, len(a.Idx))
					total := 1
					for i, v := range a.Idx {
						ds[i] = dims[v]
						total *= ds[i]
					}
					nnz := total / 6
					if nnz < 1 {
						nnz = 1
					}
					inputs[a.Tensor] = tensor.UniformRandom(a.Tensor, rng, nnz, ds...)
				}
				g, err := custard.Compile(e, nil, lang.Schedule{LoopOrder: tc.order})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				flowOut, err := flow.Run(g, inputs)
				if err != nil {
					t.Fatalf("flow run: %v", err)
				}
				cycleOut, err := sim.Run(g, inputs, sim.Options{})
				if err != nil {
					t.Fatalf("cycle run: %v", err)
				}
				if err := tensor.Equal(flowOut, cycleOut.Output, 1e-9); err != nil {
					t.Errorf("%s: flow disagrees with cycle engine: %v", tc.expr, err)
				}
				gold, err := lang.Gold(e, inputs)
				if err != nil {
					t.Fatal(err)
				}
				if err := tensor.Equal(flowOut, gold, 1e-9); err != nil {
					t.Errorf("%s: flow disagrees with gold: %v", tc.expr, err)
				}
			})
		}
	}
}

// TestFlowLocators differentially tests locator graphs.
func TestFlowLocators(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := tensor.UniformRandom("B", rng, 30, 12, 10)
	c := tensor.UniformRandom("c", rng, 10, 10)
	inputs := map[string]*tensor.COO{"B": b, "c": c}
	e := lang.MustParse("x(i) = B(i,j) * c(j)")
	g, err := custard.Compile(e, lang.Formats{"c": lang.Uniform(1, fiber.Dense)},
		lang.Schedule{UseLocators: true})
	if err != nil {
		t.Fatal(err)
	}
	flowOut, err := flow.Run(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	gold, err := lang.Gold(e, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if err := tensor.Equal(flowOut, gold, 1e-9); err != nil {
		t.Error(err)
	}
}
