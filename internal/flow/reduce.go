package flow

import (
	"sort"

	"sam/internal/token"
)

// ScalarReduce sums every innermost group of a value stream (Definition 3.7,
// n = 0), lowering stops by one level and emitting explicit zeros for empty
// groups.
func (r *Runner) ScalarReduce(name string, in Stream) Stream {
	out := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(out)
		acc := 0.0
		for t := range in {
			switch t.Kind {
			case token.Val:
				acc += t.V
			case token.Empty:
			case token.Stop:
				out <- token.V(acc)
				acc = 0
				if t.StopLevel() >= 1 {
					out <- token.S(t.StopLevel() - 1)
				}
			case token.Done:
				out <- token.D()
				return
			}
		}
	})
	return out
}

// VectorReduce merges the fibers within each group of a paired
// coordinate/value stream (Definition 3.7, n = 1), emitting unique sorted
// coordinates with summed values.
func (r *Runner) VectorReduce(name string, inCrd, inVal Stream) (Stream, Stream) {
	outCrd := make(chan token.Tok, chanBuf)
	outVal := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(outCrd)
		defer close(outVal)
		acc := map[int64]float64{}
		flush := func(stop int) {
			keys := make([]int64, 0, len(acc))
			for c := range acc {
				keys = append(keys, c)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, c := range keys {
				outCrd <- token.C(c)
				outVal <- token.V(acc[c])
			}
			outCrd <- token.S(stop)
			outVal <- token.S(stop)
			acc = map[int64]float64{}
		}
		for {
			c := next(inCrd, name)
			v := next(inVal, name)
			switch {
			case c.IsVal() && (v.IsVal() || v.IsEmpty()):
				if v.IsVal() {
					acc[c.N] += v.V
				} else if _, ok := acc[c.N]; !ok {
					acc[c.N] = 0
				}
			case c.IsStop() && (v.IsVal() || v.IsEmpty()):
				if v.IsVal() && v.V != 0 {
					fail("%s: nonzero orphan value %v", name, v)
				}
				v = next(inVal, name)
				for v.IsVal() || v.IsEmpty() {
					if v.IsVal() && v.V != 0 {
						fail("%s: nonzero orphan value %v", name, v)
					}
					v = next(inVal, name)
				}
				if !v.IsStop() || v.StopLevel() != c.StopLevel() {
					fail("%s: misaligned after orphan: %v vs %v", name, c, v)
				}
				if c.StopLevel() >= 1 {
					flush(c.StopLevel() - 1)
				}
			case c.IsStop() && v.IsStop() && c.StopLevel() == v.StopLevel():
				if c.StopLevel() >= 1 {
					flush(c.StopLevel() - 1)
				}
			case c.IsDone() && v.IsDone():
				outCrd <- token.D()
				outVal <- token.D()
				return
			default:
				fail("%s: misaligned inputs %v vs %v", name, c, v)
			}
		}
	})
	return outCrd, outVal
}

// MatrixReduce accumulates a two-level sub-tensor (Definition 3.7, n = 2).
func (r *Runner) MatrixReduce(name string, inOuter, inInner, inVal Stream) (Stream, Stream, Stream) {
	outOuter := make(chan token.Tok, chanBuf)
	outInner := make(chan token.Tok, chanBuf)
	outVal := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(outOuter)
		defer close(outInner)
		defer close(outVal)
		acc := map[int64]map[int64]float64{}
		var curOuter int64
		haveOuter := false
		flush := func(stop int) {
			is := make([]int64, 0, len(acc))
			for i := range acc {
				is = append(is, i)
			}
			sort.Slice(is, func(a, b int) bool { return is[a] < is[b] })
			for x, i := range is {
				if x > 0 {
					outInner <- token.S(0)
					outVal <- token.S(0)
				}
				outOuter <- token.C(i)
				js := make([]int64, 0, len(acc[i]))
				for j := range acc[i] {
					js = append(js, j)
				}
				sort.Slice(js, func(a, b int) bool { return js[a] < js[b] })
				for _, j := range js {
					outInner <- token.C(j)
					outVal <- token.V(acc[i][j])
				}
			}
			outOuter <- token.S(stop - 1)
			outInner <- token.S(stop)
			outVal <- token.S(stop)
			acc = map[int64]map[int64]float64{}
		}
		for {
			c := next(inInner, name)
			v := next(inVal, name)
			switch {
			case c.IsVal() && (v.IsVal() || v.IsEmpty()):
				if !haveOuter {
					o := next(inOuter, name)
					if !o.IsVal() {
						fail("%s: expected outer coordinate, got %v", name, o)
					}
					curOuter = o.N
					haveOuter = true
				}
				row := acc[curOuter]
				if row == nil {
					row = map[int64]float64{}
					acc[curOuter] = row
				}
				if v.IsVal() {
					row[c.N] += v.V
				} else if _, ok := row[c.N]; !ok {
					row[c.N] = 0
				}
			case c.IsStop() && (v.IsVal() || v.IsEmpty()):
				// Orphan zeros from a structurally empty inner reduction:
				// discard until the matching stop arrives.
				for v.IsVal() || v.IsEmpty() {
					if v.IsVal() && v.V != 0 {
						fail("%s: nonzero orphan value %v", name, v)
					}
					v = next(inVal, name)
				}
				if !v.IsStop() || v.StopLevel() != c.StopLevel() {
					fail("%s: misaligned after orphan: %v vs %v", name, c, v)
				}
				fallthrough
			case c.IsStop() && v.IsStop() && c.StopLevel() == v.StopLevel():
				m := c.StopLevel()
				if m == 0 {
					if !haveOuter {
						o := next(inOuter, name)
						if !o.IsVal() {
							fail("%s: expected outer coordinate for empty fiber, got %v", name, o)
						}
					}
					haveOuter = false
					continue
				}
				if !haveOuter {
					o := next(inOuter, name)
					if o.IsVal() {
						// trailing empty inner fiber's outer coordinate
						o = next(inOuter, name)
					}
					if !o.IsStop() || o.StopLevel() != m-1 {
						fail("%s: outer misaligned: %v vs inner %v", name, o, c)
					}
				} else {
					o := next(inOuter, name)
					if !o.IsStop() || o.StopLevel() != m-1 {
						fail("%s: outer misaligned: %v vs inner %v", name, o, c)
					}
				}
				haveOuter = false
				if m >= 2 {
					flush(m - 1)
				}
			case c.IsDone() && v.IsDone():
				if o := next(inOuter, name); !o.IsDone() {
					fail("%s: outer stream not done: %v", name, o)
				}
				outOuter <- token.D()
				outInner <- token.D()
				outVal <- token.D()
				return
			default:
				fail("%s: misaligned inputs %v vs %v", name, c, v)
			}
		}
	})
	return outOuter, outInner, outVal
}

// DropCrd is the coordinate dropper in coordinate mode (Definition 3.9) with
// the same asymmetric stop rules as the cycle implementation.
func (r *Runner) DropCrd(name string, inOuter, inInner Stream) (Stream, Stream) {
	outOuter := make(chan token.Tok, chanBuf)
	outInner := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(outOuter)
		defer close(outInner)
		var pending token.Tok
		havePending := false
		emitted := false
		everEmitted := false
		held := -1
		flushHeld := func() {
			if held >= 0 && everEmitted {
				outInner <- token.S(held)
			}
			held = -1
		}
		for t := range inInner {
			switch t.Kind {
			case token.Val:
				flushHeld()
				if !emitted {
					if !havePending {
						o := next(inOuter, name)
						if !o.IsVal() {
							fail("%s: expected outer coordinate, got %v", name, o)
						}
						pending = o
					}
					outOuter <- pending
					havePending = false
					emitted = true
				}
				outInner <- t
				everEmitted = true
			case token.Stop:
				m := t.StopLevel()
				if !emitted && !havePending {
					o := next(inOuter, name)
					switch {
					case o.IsVal():
						// dropped coordinate; for m >= 1 the outer stop
						// still follows
						if m >= 1 {
							os := next(inOuter, name)
							if !os.IsStop() || os.StopLevel() != m-1 {
								fail("%s: outer misaligned %v vs inner %v", name, os, t)
							}
							outOuter <- token.S(m - 1)
						}
					case o.IsStop() && m >= 1 && o.StopLevel() == m-1:
						outOuter <- token.S(m - 1)
					default:
						fail("%s: outer misaligned %v vs inner stop %v", name, o, t)
					}
				} else {
					if havePending {
						havePending = false // dropped coordinate
					}
					if m >= 1 {
						os := next(inOuter, name)
						if !os.IsStop() || os.StopLevel() != m-1 {
							fail("%s: outer misaligned %v vs inner %v", name, os, t)
						}
						outOuter <- token.S(m - 1)
					}
				}
				if m > held {
					held = m
				}
				emitted = false
				havePending = false
			case token.Done:
				flushHeld()
				if o := next(inOuter, name); !o.IsDone() {
					fail("%s: outer stream not done: %v", name, o)
				}
				outOuter <- token.D()
				outInner <- token.D()
				return
			}
		}
	})
	return outOuter, outInner
}

// DropVal is the coordinate dropper in value mode with orphan-zero handling.
func (r *Runner) DropVal(name string, inOuter, inVal Stream) (Stream, Stream) {
	outOuter := make(chan token.Tok, chanBuf)
	outVal := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(outOuter)
		defer close(outVal)
		c := next(inOuter, name)
		for {
			v := next(inVal, name)
			switch {
			case c.IsVal() && (v.IsVal() || v.IsEmpty()):
				if v.IsVal() && v.V != 0 {
					outOuter <- c
					outVal <- v
				}
				c = next(inOuter, name)
			case c.IsStop() && (v.IsVal() || v.IsEmpty()):
				if v.IsVal() && v.V != 0 {
					fail("%s: nonzero orphan value %v", name, v)
				}
				// discard the orphan zero; keep the stop pending
			case c.IsStop() && v.IsStop() && c.StopLevel() == v.StopLevel():
				outOuter <- c
				outVal <- v
				c = next(inOuter, name)
			case c.IsDone() && v.IsDone():
				outOuter <- token.D()
				outVal <- token.D()
				return
			default:
				fail("%s: misaligned %v vs %v", name, c, v)
			}
		}
	})
	return outOuter, outVal
}

// Locate is the iterate-locate block (Definition 4.1) following a driver
// coordinate stream into one tensor level.
func (r *Runner) Locate(name string, lvl interface {
	Locate(f int, c int64) (int64, bool)
}, inCrd, inRef, inFiber Stream) (Stream, Stream, Stream) {
	outCrd := make(chan token.Tok, chanBuf)
	outRef := make(chan token.Tok, chanBuf)
	outLoc := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(outCrd)
		defer close(outRef)
		defer close(outLoc)
		var cur token.Tok
		have := false
		for t := range inCrd {
			switch t.Kind {
			case token.Val:
				rt := next(inRef, name)
				if !have {
					cur = next(inFiber, name)
					if !cur.IsVal() && !cur.IsEmpty() {
						fail("%s: expected fiber-select reference, got %v", name, cur)
					}
					have = true
				}
				if cur.IsEmpty() {
					continue
				}
				loc, found := lvl.Locate(int(cur.N), t.N)
				if !found {
					continue
				}
				outCrd <- t
				outRef <- rt
				outLoc <- token.C(loc)
			case token.Stop:
				m := t.StopLevel()
				rs := next(inRef, name)
				if !rs.IsStop() || rs.StopLevel() != m {
					fail("%s: ref misaligned at stop %v: %v", name, t, rs)
				}
				if !have {
					ft := next(inFiber, name)
					switch {
					case ft.IsVal() || ft.IsEmpty():
						if m >= 1 {
							fs := next(inFiber, name)
							if !fs.IsStop() || fs.StopLevel() != m-1 {
								fail("%s: fiber-select misaligned %v", name, fs)
							}
						}
					case ft.IsStop() && m >= 1 && ft.StopLevel() == m-1:
					default:
						fail("%s: fiber-select misaligned %v at stop %v", name, ft, t)
					}
				} else if m >= 1 {
					fs := next(inFiber, name)
					if !fs.IsStop() || fs.StopLevel() != m-1 {
						fail("%s: fiber-select misaligned %v", name, fs)
					}
				}
				have = false
				outCrd <- t
				outRef <- t
				outLoc <- t
			case token.Done:
				if d := next(inRef, name); !d.IsDone() {
					fail("%s: ref stream not done", name)
				}
				if d := next(inFiber, name); !d.IsDone() {
					fail("%s: fiber-select stream not done", name)
				}
				outCrd <- token.D()
				outRef <- token.D()
				outLoc <- token.D()
				return
			}
		}
	})
	return outCrd, outRef, outLoc
}
