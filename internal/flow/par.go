package flow

import (
	"sam/internal/core"
	"sam/internal/token"
)

// This file implements the lane-parallelism blocks of paper Section 4.4 as
// goroutines: the parallelizer fork, the round-robin joiners, and the
// cross-lane reduction combiner. The fork/join state machines are written
// independently from internal/core; the combiner's pure stream codec
// (decode partials, add point-wise, re-encode) is shared via
// core.MergeLaneStreams since it is not a cycle-model state machine.

// Parallelizer forks a stream across lanes. level < 0 advances the lane
// after every data token (element granularity); level >= 0 advances after
// each stop of exactly level. Higher stops and done replicate to every lane.
func (r *Runner) Parallelizer(name string, level int, in Stream, lanes int) []Stream {
	outs := make([]chan token.Tok, lanes)
	ret := make([]Stream, lanes)
	for i := range outs {
		outs[i] = make(chan token.Tok, chanBuf)
		ret[i] = outs[i]
	}
	r.Go(func() {
		for _, o := range outs {
			defer close(o)
		}
		lane := 0
		for t := range in {
			switch t.Kind {
			case token.Val, token.Empty:
				outs[lane] <- t
				if level < 0 {
					lane = (lane + 1) % lanes
				}
			case token.Stop:
				switch {
				case level >= 0 && t.StopLevel() < level:
					outs[lane] <- t
				case level >= 0 && t.StopLevel() == level:
					outs[lane] <- t
					lane = (lane + 1) % lanes
				default:
					for _, o := range outs {
						o <- t
					}
					lane = 0
				}
			case token.Done:
				for _, o := range outs {
					o <- t
				}
				return
			}
		}
	})
	return ret
}

// laneHeads caches one lookahead token per lane stream.
type laneHeads struct {
	ins  []Stream
	head []token.Tok
	have []bool
	name string
}

func newLaneHeads(name string, ins []Stream) *laneHeads {
	return &laneHeads{ins: ins, head: make([]token.Tok, len(ins)), have: make([]bool, len(ins)), name: name}
}

func (h *laneHeads) peek(l int) token.Tok {
	if !h.have[l] {
		h.head[l] = next(h.ins[l], h.name)
		h.have[l] = true
	}
	return h.head[l]
}

func (h *laneHeads) pop(l int) token.Tok {
	t := h.peek(l)
	h.have[l] = false
	return t
}

// allClosed reports whether every lane's head is a stop above the switch
// level (level >= 0) or any stop (level < 0).
func (h *laneHeads) allClosed(level int) bool {
	for l := range h.ins {
		t := h.peek(l)
		if !t.IsStop() || (level >= 0 && t.StopLevel() <= level) {
			return false
		}
	}
	return true
}

// DrivenSerializer joins lane streams round-robin, rotated by per-lane
// copies of the forked outermost coordinate stream: one chunk per driver
// data token, so empty chunks and chunkless lanes cannot be confused. See
// core.NewDrivenSerializer.
func (r *Runner) DrivenSerializer(name string, level int, ins, drv []Stream) Stream {
	out := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(out)
		h := newLaneHeads(name, ins)
		hd := newLaneHeads(name+" drv", drv)
		lanes := len(ins)
		noMore := func() bool {
			for l := range drv {
				if t := hd.peek(l); t.IsVal() || t.IsEmpty() {
					return false
				}
			}
			return true
		}
		lane := 0
		for {
			d := hd.peek(lane)
			switch {
			case d.IsVal() || d.IsEmpty():
				hd.pop(lane)
			chunk:
				for {
					t := h.peek(lane)
					switch {
					case t.IsVal() || t.IsEmpty():
						out <- h.pop(lane)
					case t.IsStop() && t.StopLevel() < level:
						out <- h.pop(lane)
					case t.IsStop() && t.StopLevel() == level:
						out <- h.pop(lane)
						break chunk
					case t.IsStop():
						if !noMore() {
							out <- token.S(level)
						}
						break chunk
					default:
						fail("%s: lane stream ended mid-chunk", name)
					}
				}
				lane = (lane + 1) % lanes
			case d.IsStop():
				if !noMore() {
					lane = (lane + 1) % lanes
					continue
				}
				for l := range drv {
					if x := hd.pop(l); !x.IsStop() || x.StopLevel() != d.StopLevel() {
						fail("%s: drivers disagree on closing stop: %v vs %v", name, d, x)
					}
				}
				lvl := -1
				for l := range ins {
					x := h.pop(l)
					if !x.IsStop() || x.StopLevel() <= level || (lvl >= 0 && x.StopLevel() != lvl) {
						fail("%s: expected closing stop, lane holds %v", name, x)
					}
					lvl = x.StopLevel()
				}
				out <- token.S(lvl)
				for l := range drv {
					if x := hd.pop(l); !x.IsDone() {
						fail("%s: driver misaligned at done: %v", name, x)
					}
					if x := h.pop(l); !x.IsDone() {
						fail("%s: lanes misaligned at done: %v", name, x)
					}
				}
				out <- token.D()
				return
			default:
				fail("%s: driver stream ended before its closing stop", name)
			}
		}
	})
	return out
}

// DrivenPairSerializer is DrivenSerializer over paired (coordinate, value)
// lane streams, forwarding orphan zero values on the value output. See
// core.NewDrivenPairSerializer.
func (r *Runner) DrivenPairSerializer(name string, level int, inCrd, inVal, drv []Stream) (Stream, Stream) {
	outCrd := make(chan token.Tok, chanBuf)
	outVal := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(outCrd)
		defer close(outVal)
		hc := newLaneHeads(name+" crd", inCrd)
		hv := newLaneHeads(name+" val", inVal)
		hd := newLaneHeads(name+" drv", drv)
		lanes := len(inCrd)
		noMore := func() bool {
			for l := range drv {
				if t := hd.peek(l); t.IsVal() || t.IsEmpty() {
					return false
				}
			}
			return true
		}
		// drainOrphans forwards the zero values a lane holds while its
		// coordinate head is a stop or done.
		drainOrphans := func(l int) {
			for {
				v := hv.peek(l)
				if !v.IsVal() && !v.IsEmpty() {
					return
				}
				if v.IsVal() && v.V != 0 {
					fail("%s: nonzero orphan value %v in lane %d", name, v, l)
				}
				outVal <- hv.pop(l)
			}
		}
		lane := 0
		for {
			d := hd.peek(lane)
			switch {
			case d.IsVal() || d.IsEmpty():
				hd.pop(lane)
			chunk:
				for {
					tc := hc.peek(lane)
					switch {
					case tc.IsVal() || tc.IsEmpty():
						tv := hv.peek(lane)
						if !tv.IsVal() && !tv.IsEmpty() {
							fail("%s: value stream misaligned: crd %v vs val %v", name, tc, tv)
						}
						outCrd <- hc.pop(lane)
						outVal <- hv.pop(lane)
					case tc.IsStop() && tc.StopLevel() <= level:
						drainOrphans(lane)
						if tv := hv.pop(lane); !tv.IsStop() || tv.StopLevel() != tc.StopLevel() {
							fail("%s: misaligned stops %v vs %v", name, tc, tv)
						}
						outCrd <- hc.pop(lane)
						outVal <- tc
						if tc.StopLevel() == level {
							break chunk
						}
					case tc.IsStop():
						drainOrphans(lane)
						if !noMore() {
							outCrd <- token.S(level)
							outVal <- token.S(level)
						}
						break chunk
					default:
						fail("%s: lane stream ended mid-chunk", name)
					}
				}
				lane = (lane + 1) % lanes
			case d.IsStop():
				if !noMore() {
					lane = (lane + 1) % lanes
					continue
				}
				for l := range drv {
					if x := hd.pop(l); !x.IsStop() || x.StopLevel() != d.StopLevel() {
						fail("%s: drivers disagree on closing stop: %v vs %v", name, d, x)
					}
				}
				lvl := -1
				for l := range inCrd {
					drainOrphans(l)
					x := hc.pop(l)
					if !x.IsStop() || x.StopLevel() <= level || (lvl >= 0 && x.StopLevel() != lvl) {
						fail("%s: expected closing stop, lane holds %v", name, x)
					}
					lvl = x.StopLevel()
					if v := hv.pop(l); !v.IsStop() || v.StopLevel() != x.StopLevel() {
						fail("%s: value stream misaligned at closing stop: %v", name, v)
					}
				}
				outCrd <- token.S(lvl)
				outVal <- token.S(lvl)
				for l := range inCrd {
					if x := hd.pop(l); !x.IsDone() {
						fail("%s: driver misaligned at done: %v", name, x)
					}
					if x := hc.pop(l); !x.IsDone() {
						fail("%s: lanes misaligned at done: %v", name, x)
					}
					if x := hv.pop(l); !x.IsDone() {
						fail("%s: value stream misaligned at done: %v", name, x)
					}
				}
				outCrd <- token.D()
				outVal <- token.D()
				return
			default:
				fail("%s: driver stream ended before its closing stop", name)
			}
		}
	})
	return outCrd, outVal
}

// Serializer joins lane streams round-robin; see core.Serializer for the
// chunk-boundary and closing-stop rules.
func (r *Runner) Serializer(name string, level int, ins []Stream) Stream {
	out := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(out)
		h := newLaneHeads(name, ins)
		lanes := len(ins)
		lane := 0
		for {
			t := h.peek(lane)
			switch t.Kind {
			case token.Val, token.Empty:
				out <- h.pop(lane)
				if level < 0 {
					lane = (lane + 1) % lanes
				}
			case token.Stop:
				lvl := t.StopLevel()
				switch {
				case level >= 0 && lvl < level:
					out <- h.pop(lane)
				case level >= 0 && lvl == level:
					out <- h.pop(lane)
					lane = (lane + 1) % lanes
				case h.allClosed(level):
					for l := range ins {
						if x := h.pop(l); !x.IsStop() || x.StopLevel() != lvl {
							fail("%s: lanes disagree on closing stop: %v vs %v", name, t, x)
						}
					}
					out <- t
					lane = 0
				case level < 0:
					fail("%s: lanes misaligned at stop %v", name, t)
				default:
					out <- token.S(level)
					lane = (lane + 1) % lanes
				}
			case token.Done:
				for l := range ins {
					if x := h.pop(l); !x.IsDone() {
						fail("%s: lanes misaligned at done: %v", name, x)
					}
				}
				out <- token.D()
				return
			}
		}
	})
	return out
}

// PairSerializer joins (coordinate, value) lane stream pairs round-robin,
// keyed on the coordinate streams; orphan zero values (a value whose
// coordinate lane already holds a stop) pass through on the value output.
// See core.PairSerializer.
func (r *Runner) PairSerializer(name string, level int, inCrd, inVal []Stream) (Stream, Stream) {
	outCrd := make(chan token.Tok, chanBuf)
	outVal := make(chan token.Tok, chanBuf)
	r.Go(func() {
		defer close(outCrd)
		defer close(outVal)
		hc := newLaneHeads(name+" crd", inCrd)
		hv := newLaneHeads(name+" val", inVal)
		lanes := len(inCrd)
		lane := 0
		drainOrphans := func() {
			for l := range inCrd {
				c := hc.peek(l)
				if !c.IsStop() && !c.IsDone() {
					continue
				}
				for {
					v := hv.peek(l)
					if !v.IsVal() && !v.IsEmpty() {
						break
					}
					if v.IsVal() && v.V != 0 {
						fail("%s: nonzero orphan value %v in lane %d", name, v, l)
					}
					outVal <- hv.pop(l)
				}
			}
		}
		for {
			tc := hc.peek(lane)
			switch tc.Kind {
			case token.Val, token.Empty:
				tv := hv.peek(lane)
				if !tv.IsVal() && !tv.IsEmpty() {
					fail("%s: value stream misaligned: crd %v vs val %v", name, tc, tv)
				}
				outCrd <- hc.pop(lane)
				outVal <- hv.pop(lane)
				if level < 0 {
					lane = (lane + 1) % lanes
				}
			case token.Stop:
				lvl := tc.StopLevel()
				if level >= 0 && lvl <= level {
					tv := hv.peek(lane)
					if tv.IsVal() || tv.IsEmpty() {
						if tv.IsVal() && tv.V != 0 {
							fail("%s: nonzero orphan value %v at stop %v", name, tv, tc)
						}
						outVal <- hv.pop(lane)
						continue
					}
					if !tv.IsStop() || tv.StopLevel() != lvl {
						fail("%s: misaligned stops %v vs %v", name, tc, tv)
					}
					outCrd <- hc.pop(lane)
					outVal <- hv.pop(lane)
					if lvl == level {
						lane = (lane + 1) % lanes
					}
					continue
				}
				if !hc.allClosed(level) {
					if level < 0 {
						fail("%s: lanes misaligned at stop %v", name, tc)
					}
					outCrd <- token.S(level)
					outVal <- token.S(level)
					lane = (lane + 1) % lanes
					continue
				}
				drainOrphans()
				for l := range inCrd {
					if x := hc.pop(l); x.StopLevel() != lvl {
						fail("%s: lanes disagree on closing stop: %v vs %v", name, tc, x)
					}
					if x := hv.pop(l); !x.IsStop() || x.StopLevel() != lvl {
						fail("%s: value stream misaligned at closing stop: %v", name, x)
					}
				}
				outCrd <- tc
				outVal <- tc
				lane = 0
			case token.Done:
				for l := range inCrd {
					if x := hc.peek(l); !x.IsDone() {
						fail("%s: lanes misaligned at done: %v", name, x)
					}
				}
				drainOrphans()
				for l := range inCrd {
					hc.pop(l)
					if x := hv.pop(l); !x.IsDone() {
						fail("%s: value stream misaligned at done: %v", name, x)
					}
				}
				outCrd <- token.D()
				outVal <- token.D()
				return
			}
		}
	})
	return outCrd, outVal
}

// LaneCombine merges two lanes' output stream bundles (m coordinate streams
// plus values per lane) by adding values at matching coordinate points.
func (r *Runner) LaneCombine(name string, m int, crdA []Stream, valA Stream, crdB []Stream, valB Stream) ([]Stream, Stream) {
	outCrd := make([]chan token.Tok, m)
	retCrd := make([]Stream, m)
	for q := range outCrd {
		outCrd[q] = make(chan token.Tok, chanBuf)
		retCrd[q] = outCrd[q]
	}
	outVal := make(chan token.Tok, chanBuf)
	r.Go(func() {
		for _, o := range outCrd {
			defer close(o)
		}
		defer close(outVal)
		collectAll := func(ss []Stream) []token.Stream {
			out := make([]token.Stream, len(ss))
			for i, s := range ss {
				out[i] = Collect(s)
			}
			return out
		}
		ca := collectAll(crdA)
		va := Collect(valA)
		cb := collectAll(crdB)
		vb := Collect(valB)
		merged, err := core.MergeLaneStreams(m, ca, va, cb, vb)
		if err != nil {
			fail("%s: %v", name, err)
		}
		for q := 0; q < m; q++ {
			for _, t := range merged[q] {
				outCrd[q] <- t
			}
		}
		for _, t := range merged[m] {
			outVal <- t
		}
	})
	return retCrd, outVal
}
