package flow

import (
	"fmt"

	"sam/internal/bind"
	"sam/internal/fiber"
	"sam/internal/graph"
	"sam/internal/lang"
	"sam/internal/tensor"
	"sam/internal/token"
)

// Run executes a compiled SAM graph as a concurrent goroutine pipeline and
// assembles the output tensor. It supports the core block set (scanners,
// repeaters, intersecters, unioners, locators, arrays, ALUs, reducers,
// droppers, writers); graphs using gallop or bitvector blocks run on the
// cycle engine instead.
func Run(g *graph.Graph, inputs map[string]*tensor.COO) (*tensor.COO, error) {
	r := &Runner{}
	bound, err := bind.Operands(g, inputs)
	if err != nil {
		return nil, err
	}
	dims, err := bind.OutputDims(g, inputs)
	if err != nil {
		return nil, err
	}

	// Wire edges: outputs may fan out; every input port gets one stream.
	type portKey struct {
		node int
		port string
	}
	consumers := map[portKey][]portKey{}
	for _, e := range g.Edges {
		k := portKey{e.From, e.FromPort}
		consumers[k] = append(consumers[k], portKey{e.To, e.ToPort})
	}
	inStreams := map[portKey]Stream{}
	deliver := func(n *graph.Node, port string, s Stream) {
		outs := consumers[portKey{n.ID, port}]
		if len(outs) == 0 {
			// Dangling diagnostic port: drain it.
			r.Go(func() {
				for range s {
				}
			})
			return
		}
		fans := r.Fanout(r.Elastic(s), len(outs))
		for i, c := range outs {
			inStreams[c] = fans[i]
		}
	}
	in := func(n *graph.Node, port string) (Stream, error) {
		s, ok := inStreams[portKey{n.ID, port}]
		if !ok {
			return nil, fmt.Errorf("flow: node %q input %q unconnected", n.Label, port)
		}
		return s, nil
	}

	// Instantiate in topological order (graphs are emitted topologically by
	// Custard, but sort defensively).
	order, err := topoOrder(g)
	if err != nil {
		return nil, err
	}
	writerCrd := map[int]token.Stream{}
	var writerVals []float64
	collect := map[int]*graph.Node{}

	for _, n := range order {
		switch n.Kind {
		case graph.Root:
			deliver(n, "ref", r.Root())
		case graph.Scanner:
			t := bound[n.Tensor]
			inS, err := in(n, "ref")
			if err != nil {
				return nil, err
			}
			crd, ref := r.Scanner(n.Label, t.Levels[n.Level], inS)
			deliver(n, "crd", crd)
			deliver(n, "ref", ref)
		case graph.Repeat:
			crd, err := in(n, "crd")
			if err != nil {
				return nil, err
			}
			ref, err := in(n, "ref")
			if err != nil {
				return nil, err
			}
			deliver(n, "ref", r.Repeater(n.Label, crd, ref))
		case graph.Intersect, graph.Union:
			crds := make([]Stream, n.Ways)
			refs := make([]Stream, n.Ways)
			for i := 0; i < n.Ways; i++ {
				if crds[i], err = in(n, fmt.Sprintf("crd%d", i)); err != nil {
					return nil, err
				}
				if refs[i], err = in(n, fmt.Sprintf("ref%d", i)); err != nil {
					return nil, err
				}
			}
			var crd Stream
			var refOut []Stream
			if n.Kind == graph.Intersect {
				crd, refOut = r.Intersect(n.Label, crds, refs)
			} else {
				crd, refOut = r.Union(n.Label, crds, refs)
			}
			deliver(n, "crd", crd)
			for i, s := range refOut {
				deliver(n, fmt.Sprintf("ref%d", i), s)
			}
		case graph.Locate:
			t := bound[n.Tensor]
			crd, err := in(n, "crd")
			if err != nil {
				return nil, err
			}
			ref, err := in(n, "ref")
			if err != nil {
				return nil, err
			}
			fib, err := in(n, "fiber")
			if err != nil {
				return nil, err
			}
			oc, orf, ol := r.Locate(n.Label, t.Levels[n.Level], crd, ref, fib)
			deliver(n, "crd", oc)
			deliver(n, "ref", orf)
			deliver(n, "loc", ol)
		case graph.Array:
			t := bound[n.Tensor]
			inS, err := in(n, "ref")
			if err != nil {
				return nil, err
			}
			deliver(n, "val", r.ArrayLoad(n.Label, t.Vals, inS))
		case graph.ALU:
			a, err := in(n, "a")
			if err != nil {
				return nil, err
			}
			b, err := in(n, "b")
			if err != nil {
				return nil, err
			}
			op := n.Op
			deliver(n, "val", r.ALU(n.Label, func(x, y float64) float64 {
				switch op {
				case lang.Mul:
					return x * y
				case lang.Add:
					return x + y
				default:
					return x - y
				}
			}, a, b))
		case graph.Reduce:
			switch n.RedN {
			case 0:
				v, err := in(n, "val")
				if err != nil {
					return nil, err
				}
				deliver(n, "val", r.ScalarReduce(n.Label, v))
			case 1:
				c, err := in(n, "crd")
				if err != nil {
					return nil, err
				}
				v, err := in(n, "val")
				if err != nil {
					return nil, err
				}
				oc, ov := r.VectorReduce(n.Label, c, v)
				deliver(n, "crd", oc)
				deliver(n, "val", ov)
			case 2:
				c0, err := in(n, "crd0")
				if err != nil {
					return nil, err
				}
				c1, err := in(n, "crd1")
				if err != nil {
					return nil, err
				}
				v, err := in(n, "val")
				if err != nil {
					return nil, err
				}
				oo, oi, ov := r.MatrixReduce(n.Label, c0, c1, v)
				deliver(n, "crd0", oo)
				deliver(n, "crd1", oi)
				deliver(n, "val", ov)
			default:
				return nil, fmt.Errorf("flow: reducer n=%d unsupported", n.RedN)
			}
		case graph.CrdDrop:
			outer, err := in(n, "outer")
			if err != nil {
				return nil, err
			}
			if n.DropVal {
				v, err := in(n, "val")
				if err != nil {
					return nil, err
				}
				oo, ov := r.DropVal(n.Label, outer, v)
				deliver(n, "outer", oo)
				deliver(n, "val", ov)
			} else {
				inner, err := in(n, "inner")
				if err != nil {
					return nil, err
				}
				oo, oi := r.DropCrd(n.Label, outer, inner)
				deliver(n, "outer", oo)
				deliver(n, "inner", oi)
			}
		case graph.Parallelize:
			inS, err := in(n, "in")
			if err != nil {
				return nil, err
			}
			for i, s := range r.Parallelizer(n.Label, n.Level, inS, n.Ways) {
				deliver(n, fmt.Sprintf("out%d", i), s)
			}
		case graph.Serialize:
			ins := make([]Stream, n.Ways)
			for i := range ins {
				if ins[i], err = in(n, fmt.Sprintf("in%d", i)); err != nil {
					return nil, err
				}
			}
			if n.Level < 0 {
				deliver(n, "out", r.Serializer(n.Label, n.Level, ins))
				break
			}
			drv, err := drvStreams(in, n)
			if err != nil {
				return nil, err
			}
			deliver(n, "out", r.DrivenSerializer(n.Label, n.Level, ins, drv))
		case graph.SerializePair:
			crds := make([]Stream, n.Ways)
			vals := make([]Stream, n.Ways)
			for i := 0; i < n.Ways; i++ {
				if crds[i], err = in(n, fmt.Sprintf("crd%d", i)); err != nil {
					return nil, err
				}
				if vals[i], err = in(n, fmt.Sprintf("val%d", i)); err != nil {
					return nil, err
				}
			}
			var oc, ov Stream
			if n.Level < 0 {
				oc, ov = r.PairSerializer(n.Label, n.Level, crds, vals)
			} else {
				drv, err := drvStreams(in, n)
				if err != nil {
					return nil, err
				}
				oc, ov = r.DrivenPairSerializer(n.Label, n.Level, crds, vals, drv)
			}
			deliver(n, "crd", oc)
			deliver(n, "val", ov)
		case graph.LaneReduce:
			side := func(s int) ([]Stream, Stream, error) {
				crds := make([]Stream, n.RedN)
				for q := 0; q < n.RedN; q++ {
					var err error
					if crds[q], err = in(n, fmt.Sprintf("crd%d_%d", q, s)); err != nil {
						return nil, nil, err
					}
				}
				val, err := in(n, fmt.Sprintf("val%d", s))
				if err != nil {
					return nil, nil, err
				}
				return crds, val, nil
			}
			ca, va, err := side(0)
			if err != nil {
				return nil, err
			}
			cb, vb, err := side(1)
			if err != nil {
				return nil, err
			}
			oc, ov := r.LaneCombine(n.Label, n.RedN, ca, va, cb, vb)
			for q, s := range oc {
				deliver(n, fmt.Sprintf("crd%d", q), s)
			}
			deliver(n, "val", ov)
		case graph.CrdWriter, graph.ValsWriter:
			collect[n.ID] = n
		default:
			return nil, fmt.Errorf("flow: block kind %v not supported by the goroutine executor", n.Kind)
		}
	}

	// Writers collect synchronously on this goroutine after launch.
	type done struct {
		id  int
		rec token.Stream
	}
	results := make(chan done, len(collect))
	for id, n := range collect {
		port := "crd"
		if n.Kind == graph.ValsWriter {
			port = "val"
		}
		s, err := in(n, port)
		if err != nil {
			return nil, err
		}
		id := id
		r.Go(func() { results <- done{id, Collect(s)} })
	}
	recs := map[int]token.Stream{}
	for range collect {
		d := <-results
		recs[d.id] = d.rec
	}
	if err := r.Wait(); err != nil {
		return nil, err
	}
	// Sanity-check the recorded writer streams before materializing levels:
	// a malformed stream here is a block bug, and Validate pinpoints it.
	for id, n := range collect {
		depth := len(g.OutputVars)
		if n.Kind == graph.CrdWriter {
			depth = n.OutLevel + 1
		}
		if err := recs[id].Validate(depth); err != nil {
			return nil, fmt.Errorf("flow: writer %q stream malformed: %w", n.Label, err)
		}
	}
	for id, n := range collect {
		if n.Kind == graph.ValsWriter {
			for _, t := range recs[id] {
				if t.IsVal() {
					writerVals = append(writerVals, t.V)
				} else if t.IsEmpty() {
					writerVals = append(writerVals, 0)
				}
			}
		} else {
			writerCrd[n.OutLevel] = recs[id]
		}
	}

	// Assemble exactly like the cycle engine.
	ft := &fiber.Tensor{Name: g.OutputTensor, Dims: dims, Vals: writerVals}
	for lvl := 0; lvl < len(g.OutputVars); lvl++ {
		rec, ok := writerCrd[lvl]
		if !ok {
			return nil, fmt.Errorf("flow: no writer stream for output level %d", lvl)
		}
		seg := []int32{0}
		var crd []int32
		for _, t := range rec {
			switch t.Kind {
			case token.Val:
				crd = append(crd, int32(t.N))
			case token.Stop:
				seg = append(seg, int32(len(crd)))
			}
		}
		if len(crd) == 0 && lvl > 0 {
			// Empty-result artifact: no parent coordinates, so no fibers.
			seg = []int32{0}
		}
		ft.Levels = append(ft.Levels, &fiber.CompressedLevel{N: dims[lvl], Seg: seg, Crd: crd})
	}
	// Optimized graphs bypass coordinate-mode droppers; rebuild the fiber
	// count of all-empty levels from the parent, as the cycle engine does.
	// Unoptimized graphs keep the strict Validate tripwire.
	if g.OptLevel > 0 {
		ft.NormalizeEmptyLevels()
	}
	if err := ft.Validate(); err != nil {
		return nil, fmt.Errorf("flow: assembled output invalid: %w", err)
	}
	out := tensor.FromFiber(ft)
	perm := make([]int, len(g.LHSVars))
	for i, v := range g.LHSVars {
		for j, u := range g.OutputVars {
			if u == v {
				perm[i] = j
			}
		}
	}
	return out.Permute(g.OutputTensor, perm)
}

// drvStreams fetches a deep serializer's per-lane rotation-driver streams.
func drvStreams(in func(*graph.Node, string) (Stream, error), n *graph.Node) ([]Stream, error) {
	drv := make([]Stream, n.Ways)
	for i := range drv {
		var err error
		if drv[i], err = in(n, fmt.Sprintf("drv%d", i)); err != nil {
			return nil, err
		}
	}
	return drv, nil
}

// topoOrder sorts nodes so producers precede consumers.
func topoOrder(g *graph.Graph) ([]*graph.Node, error) {
	indeg := make([]int, len(g.Nodes))
	succ := make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	var out []*graph.Node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, g.Nodes[n])
		for _, s := range succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(g.Nodes) {
		return nil, fmt.Errorf("flow: graph has a cycle")
	}
	return out, nil
}
