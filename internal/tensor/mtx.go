package tensor

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a sparse matrix in Matrix Market coordinate format
// (the SuiteSparse distribution format used throughout the paper's
// evaluation). Supported qualifiers: real/integer/pattern and
// general/symmetric.
func ReadMatrixMarket(name string, r io.Reader) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("tensor: empty matrix market input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("tensor: unsupported matrix market header %q", sc.Text())
	}
	field, sym := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("tensor: unsupported matrix market field %q", field)
	}
	switch sym {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("tensor: unsupported matrix market symmetry %q", sym)
	}
	var c *COO
	declared := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if c == nil {
			if len(f) != 3 {
				return nil, fmt.Errorf("tensor: bad size line %q", line)
			}
			rows, err1 := strconv.Atoi(f[0])
			cols, err2 := strconv.Atoi(f[1])
			nnz, err3 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("tensor: bad size line %q", line)
			}
			declared = nnz
			c = NewCOO(name, rows, cols)
			continue
		}
		if len(f) < 2 {
			return nil, fmt.Errorf("tensor: bad entry line %q", line)
		}
		i, err1 := strconv.ParseInt(f[0], 10, 64)
		j, err2 := strconv.ParseInt(f[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("tensor: bad entry line %q", line)
		}
		v := 1.0
		if field != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("tensor: missing value in %q", line)
			}
			var err error
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("tensor: bad value in %q", line)
			}
		}
		c.Append(v, i-1, j-1)
		if sym == "symmetric" && i != j {
			c.Append(v, j-1, i-1)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("tensor: matrix market input has no size line")
	}
	if sym == "general" && len(c.Pts) != declared {
		return nil, fmt.Errorf("tensor: declared %d entries, read %d", declared, len(c.Pts))
	}
	c.Sort()
	return c, nil
}

// WriteMatrixMarket writes a matrix in Matrix Market coordinate format.
func WriteMatrixMarket(w io.Writer, c *COO) error {
	if c.Order() != 2 {
		return fmt.Errorf("tensor: matrix market output requires a matrix, got order %d", c.Order())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintf(bw, "%d %d %d\n", c.Dims[0], c.Dims[1], len(c.Pts))
	for _, p := range c.Pts {
		fmt.Fprintf(bw, "%d %d %.17g\n", p.Crd[0]+1, p.Crd[1]+1, p.Val)
	}
	return bw.Flush()
}
