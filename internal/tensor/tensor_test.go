package tensor

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sam/internal/fiber"
)

func TestSortDeduplicates(t *testing.T) {
	c := NewCOO("T", 4, 4)
	c.Append(1, 2, 3)
	c.Append(2, 0, 1)
	c.Append(3, 2, 3) // duplicate coordinate: values sum
	c.Sort()
	if c.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", c.NNZ())
	}
	if c.Pts[0].Crd[0] != 0 || c.Pts[1].Val != 4 {
		t.Errorf("sorted points = %+v", c.Pts)
	}
}

// TestQuickPermuteInverse checks that permuting by p then by p's inverse is
// the identity.
func TestQuickPermuteInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := []int{r.Intn(8) + 2, r.Intn(8) + 2, r.Intn(8) + 2}
		c := UniformRandom("T", r, r.Intn(30)+1, dims...)
		perm := r.Perm(3)
		inv := make([]int, 3)
		for i, p := range perm {
			inv[p] = i
		}
		fwd, err := c.Permute("P", perm)
		if err != nil {
			return false
		}
		back, err := fwd.Permute("T", inv)
		if err != nil {
			return false
		}
		return Equal(c, back, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickSplitPreservesPoints checks the iteration-splitting reshape.
func TestQuickSplitPreservesPoints(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(500) + 10
		chunks := r.Intn(15) + 1
		c := UniformRandom("v", r, r.Intn(n)+1, n)
		s, err := c.Split("s", 0, chunks)
		if err != nil {
			return false
		}
		size := int64(s.Dims[1])
		back := NewCOO("v", n)
		for _, p := range s.Pts {
			back.Append(p.Val, p.Crd[0]*size+p.Crd[1])
		}
		back.Sort()
		return Equal(c, back, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := UniformRandom("M", rng, 50, 20, 30)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket("M", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equal(c, back, 0); err != nil {
		t.Error(err)
	}
}

func TestMatrixMarketSymmetricAndPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern symmetric
3 3 2
2 1
3 3
`
	m, err := ReadMatrixMarket("S", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// (2,1) mirrors to (1,2); (3,3) is diagonal.
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
	d := m.ToDense()
	if d.At(1, 0) != 1 || d.At(0, 1) != 1 || d.At(2, 2) != 1 {
		t.Errorf("unexpected dense contents: %+v", d.Data)
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	for _, bad := range []string{
		"not a header\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
	} {
		if _, err := ReadMatrixMarket("X", strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed input %q", bad)
		}
	}
}

func TestUniformRandomExactNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := UniformRandom("T", rng, 123, 40, 40)
	if c.NNZ() != 123 {
		t.Errorf("nnz = %d, want 123", c.NNZ())
	}
	// All coordinates unique and in range.
	seen := map[[2]int64]bool{}
	for _, p := range c.Pts {
		k := [2]int64{p.Crd[0], p.Crd[1]}
		if seen[k] {
			t.Fatalf("duplicate coordinate %v", k)
		}
		seen[k] = true
		if p.Crd[0] >= 40 || p.Crd[1] >= 40 {
			t.Fatalf("coordinate out of range: %v", p.Crd)
		}
	}
	// Requesting more nonzeros than cells saturates.
	full := UniformRandom("F", rng, 100, 5, 5)
	if full.NNZ() != 25 {
		t.Errorf("saturated nnz = %d, want 25", full.NNZ())
	}
}

func TestRunsPairStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b, c := RunsPair(rng, 2000, 400, 8)
	if b.NNZ() != 400 || c.NNZ() != 400 {
		t.Fatalf("nnz = %d/%d, want 400/400", b.NNZ(), c.NNZ())
	}
	// Supports are disjoint: runs alternate.
	bset := map[int64]bool{}
	for _, p := range b.Pts {
		bset[p.Crd[0]] = true
	}
	for _, p := range c.Pts {
		if bset[p.Crd[0]] {
			t.Fatalf("runs overlap at %d", p.Crd[0])
		}
	}
}

func TestBlocksPairStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b, c := BlocksPair(rng, 2000, 400, 16)
	if b.NNZ() != 400 || c.NNZ() != 400 {
		t.Fatalf("nnz = %d/%d, want 400/400", b.NNZ(), c.NNZ())
	}
	// Blocks coincide: intersection is the full support.
	bset := map[int64]bool{}
	for _, p := range b.Pts {
		bset[p.Crd[0]] = true
	}
	common := 0
	for _, p := range c.Pts {
		if bset[p.Crd[0]] {
			common++
		}
	}
	if common != 400 {
		t.Errorf("blocks share %d positions, want 400", common)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := UniformRandom("T", rng, 30, 8, 9)
	back := c.ToDense().ToCOO("T")
	if err := Equal(c, back, 0); err != nil {
		t.Error(err)
	}
}

func TestEqualReportsMismatches(t *testing.T) {
	a := NewCOO("a", 4)
	a.Append(1, 1)
	b := NewCOO("b", 4)
	b.Append(1, 2)
	if err := Equal(a, b, 0); err == nil {
		t.Error("coordinate mismatch not detected")
	}
	c := NewCOO("c", 4)
	c.Append(2, 1)
	if err := Equal(a, c, 0); err == nil {
		t.Error("value mismatch not detected")
	}
	d := NewCOO("d", 5)
	d.Append(1, 1)
	if err := Equal(a, d, 0); err == nil {
		t.Error("shape mismatch not detected")
	}
	// Explicit zeros are ignored.
	e := NewCOO("e", 4)
	e.Append(1, 1)
	e.Append(0, 3)
	if err := Equal(a, e, 0); err != nil {
		t.Errorf("explicit zero should be ignored: %v", err)
	}
}

// TestQuickBuildFromCOOMatchesEntries checks COO -> fibertree -> COO.
func TestQuickBuildFromCOOMatchesEntries(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := []int{r.Intn(10) + 1, r.Intn(10) + 1}
		c := UniformRandom("T", r, r.Intn(dims[0]*dims[1])+1, dims...)
		ft, err := c.Build(fiber.Compressed, fiber.Compressed)
		if err != nil {
			return false
		}
		return Equal(c, FromFiber(ft), 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
