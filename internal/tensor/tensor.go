// Package tensor provides the tensor substrate for the SAM reproduction:
// coordinate-list (COO) and dense tensors, conversion to fibertree storage,
// reshaping for split formats, the synthetic data generators of the paper's
// evaluation (uniform random, runs, and blocks — Figure 17), Matrix Market
// IO, and a reference dense evaluator used as gold for every experiment.
package tensor

import (
	"fmt"
	"math/rand"
	"sort"

	"sam/internal/fiber"
)

// COO is a coordinate-list tensor: one coordinate tuple and value per stored
// point. Points need not be sorted until Sort is called.
type COO struct {
	Name string
	Dims []int
	Pts  []Point
}

// Point is one stored tensor component.
type Point struct {
	Crd []int64
	Val float64
}

// NewCOO creates an empty COO tensor of the given shape.
func NewCOO(name string, dims ...int) *COO {
	return &COO{Name: name, Dims: append([]int(nil), dims...)}
}

// Order is the number of dimensions.
func (c *COO) Order() int { return len(c.Dims) }

// NNZ is the number of stored points.
func (c *COO) NNZ() int { return len(c.Pts) }

// Append adds one point; coordinates are copied.
func (c *COO) Append(val float64, crd ...int64) {
	c.Pts = append(c.Pts, Point{Crd: append([]int64(nil), crd...), Val: val})
}

// Sort orders points lexicographically and sums duplicates.
func (c *COO) Sort() {
	sort.Slice(c.Pts, func(i, j int) bool { return lexLess(c.Pts[i].Crd, c.Pts[j].Crd) })
	out := c.Pts[:0]
	for _, p := range c.Pts {
		if len(out) > 0 && lexEq(out[len(out)-1].Crd, p.Crd) {
			out[len(out)-1].Val += p.Val
			continue
		}
		out = append(out, p)
	}
	c.Pts = out
}

// Permute returns a new COO with dimensions reordered by perm: output
// dimension d is input dimension perm[d]. It implements transposition and
// the mode orderings derived from a schedule.
func (c *COO) Permute(name string, perm []int) (*COO, error) {
	if len(perm) != c.Order() {
		return nil, fmt.Errorf("tensor: permutation of length %d for order-%d tensor", len(perm), c.Order())
	}
	dims := make([]int, len(perm))
	for d, p := range perm {
		if p < 0 || p >= c.Order() {
			return nil, fmt.Errorf("tensor: permutation index %d out of range", p)
		}
		dims[d] = c.Dims[p]
	}
	out := NewCOO(name, dims...)
	for _, pt := range c.Pts {
		crd := make([]int64, len(perm))
		for d, p := range perm {
			crd[d] = pt.Crd[p]
		}
		out.Pts = append(out.Pts, Point{Crd: crd, Val: pt.Val})
	}
	out.Sort()
	return out, nil
}

// Split reshapes dimension d of size N into two dimensions (chunks,
// chunkSize) with chunkSize = ceil(N/chunks), producing an order+1 tensor.
// This is the iteration-splitting/tiling transformation of paper Section 4.1
// used by the "w/ split" configurations of Figure 13.
func (c *COO) Split(name string, d, chunks int) (*COO, error) {
	if d < 0 || d >= c.Order() {
		return nil, fmt.Errorf("tensor: split dimension %d out of range", d)
	}
	if chunks <= 0 {
		return nil, fmt.Errorf("tensor: split into %d chunks", chunks)
	}
	size := (c.Dims[d] + chunks - 1) / chunks
	dims := make([]int, 0, c.Order()+1)
	dims = append(dims, c.Dims[:d]...)
	dims = append(dims, chunks, size)
	dims = append(dims, c.Dims[d+1:]...)
	out := NewCOO(name, dims...)
	for _, pt := range c.Pts {
		crd := make([]int64, 0, len(dims))
		crd = append(crd, pt.Crd[:d]...)
		crd = append(crd, pt.Crd[d]/int64(size), pt.Crd[d]%int64(size))
		crd = append(crd, pt.Crd[d+1:]...)
		out.Pts = append(out.Pts, Point{Crd: crd, Val: pt.Val})
	}
	out.Sort()
	return out, nil
}

// Build converts the COO tensor to fibertree storage with the given level
// formats. The COO is sorted as a side effect.
func (c *COO) Build(formats ...fiber.Format) (*fiber.Tensor, error) {
	c.Sort()
	return c.BuildNamed(c.Name, formats...)
}

// SortedStrict reports whether the stored points are strictly ascending
// lexicographically (sorted, no duplicates), without mutating the tensor.
// Callers use it to take read-only fast paths that are safe under
// concurrent runs sharing one input tensor.
func (c *COO) SortedStrict() bool {
	for i := 1; i < len(c.Pts); i++ {
		if !lexLess(c.Pts[i-1].Crd, c.Pts[i].Crd) {
			return false
		}
	}
	return true
}

// BuildNamed converts the COO tensor to fibertree storage under the given
// tensor name without mutating the receiver: points must already be strictly
// sorted (fiber.Build validates and errors otherwise). Coordinate slices are
// shared with the fibertree builder, which only reads them, so concurrent
// BuildNamed calls on one tensor are safe — the property the operand-binding
// fast path relies on.
func (c *COO) BuildNamed(name string, formats ...fiber.Format) (*fiber.Tensor, error) {
	coords := make([][]int64, len(c.Pts))
	vals := make([]float64, len(c.Pts))
	for i, p := range c.Pts {
		coords[i] = p.Crd
		vals[i] = p.Val
	}
	return fiber.Build(name, c.Dims, formats, coords, vals)
}

// FromFiber converts fibertree storage back to COO (sorted).
func FromFiber(t *fiber.Tensor) *COO {
	c := NewCOO(t.Name, t.Dims...)
	t.Iterate(func(crd []int64, v float64) {
		c.Append(v, crd...)
	})
	return c
}

// Dense is a dense row-major tensor used as the gold-model representation.
type Dense struct {
	Dims []int
	Data []float64
}

// NewDense allocates a zero dense tensor.
func NewDense(dims ...int) *Dense {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return &Dense{Dims: append([]int(nil), dims...), Data: make([]float64, n)}
}

// offset computes the row-major position of a coordinate tuple.
func (d *Dense) offset(crd ...int64) int {
	o := 0
	for i, c := range crd {
		o = o*d.Dims[i] + int(c)
	}
	return o
}

// At reads one component.
func (d *Dense) At(crd ...int64) float64 { return d.Data[d.offset(crd...)] }

// Set writes one component.
func (d *Dense) Set(v float64, crd ...int64) { d.Data[d.offset(crd...)] = v }

// Add accumulates into one component.
func (d *Dense) Add(v float64, crd ...int64) { d.Data[d.offset(crd...)] += v }

// ToCOO converts the dense tensor to COO, dropping zeros.
func (d *Dense) ToCOO(name string) *COO {
	c := NewCOO(name, d.Dims...)
	crd := make([]int64, len(d.Dims))
	var walk func(dim int)
	walk = func(dim int) {
		if dim == len(d.Dims) {
			if v := d.At(crd...); v != 0 {
				c.Append(v, crd...)
			}
			return
		}
		for i := 0; i < d.Dims[dim]; i++ {
			crd[dim] = int64(i)
			walk(dim + 1)
		}
	}
	if len(d.Dims) == 0 {
		if d.Data[0] != 0 {
			c.Append(d.Data[0])
		}
		return c
	}
	walk(0)
	return c
}

// ToDense converts a COO tensor to dense.
func (c *COO) ToDense() *Dense {
	d := NewDense(c.Dims...)
	for _, p := range c.Pts {
		d.Add(p.Val, p.Crd...)
	}
	return d
}

// Equal compares two COO tensors after sorting, within tolerance eps.
func Equal(a, b *COO, eps float64) error {
	if a.Order() != b.Order() {
		return fmt.Errorf("tensor: order mismatch %d vs %d", a.Order(), b.Order())
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return fmt.Errorf("tensor: dim %d mismatch %d vs %d", i, a.Dims[i], b.Dims[i])
		}
	}
	a.Sort()
	b.Sort()
	// Zeros are semantically absent: compare nonzero support.
	ap := withoutZeros(a.Pts, eps)
	bp := withoutZeros(b.Pts, eps)
	if len(ap) != len(bp) {
		return fmt.Errorf("tensor: nnz mismatch %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if !lexEq(ap[i].Crd, bp[i].Crd) {
			return fmt.Errorf("tensor: point %d coordinate mismatch %v vs %v", i, ap[i].Crd, bp[i].Crd)
		}
		diff := ap[i].Val - bp[i].Val
		if diff < -eps || diff > eps {
			return fmt.Errorf("tensor: value mismatch at %v: %g vs %g", ap[i].Crd, ap[i].Val, bp[i].Val)
		}
	}
	return nil
}

func withoutZeros(pts []Point, eps float64) []Point {
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		if p.Val < -eps || p.Val > eps {
			out = append(out, p)
		}
	}
	return out
}

func lexLess(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func lexEq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// UniformRandom generates a tensor with exactly nnz components placed
// uniformly at random (the paper's urandom pattern), values in (0, 1].
func UniformRandom(name string, rng *rand.Rand, nnz int, dims ...int) *COO {
	c := NewCOO(name, dims...)
	total := 1
	for _, d := range dims {
		total *= d
	}
	if nnz > total {
		nnz = total
	}
	seen := make(map[int64]bool, nnz)
	crd := make([]int64, len(dims))
	for len(c.Pts) < nnz {
		key := int64(0)
		for i, d := range dims {
			crd[i] = int64(rng.Intn(d))
			key = key*int64(d) + crd[i]
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		c.Append(rng.Float64()*0.9+0.1, crd...)
	}
	c.Sort()
	return c
}

// IdenticalBits reports whether two COO tensors are bitwise identical:
// same dimensions, same points in the same order, coordinates and values
// compared exactly (explicit zeros included). This is the optimizer's and
// the lane batteries' correctness bar — stricter than Equal, which sorts,
// tolerates eps, and ignores explicit zeros. A nil error means identical.
func IdenticalBits(a, b *COO) error {
	if len(a.Dims) != len(b.Dims) {
		return fmt.Errorf("order %d vs %d", len(a.Dims), len(b.Dims))
	}
	for m := range a.Dims {
		if a.Dims[m] != b.Dims[m] {
			return fmt.Errorf("dims %v vs %v", a.Dims, b.Dims)
		}
	}
	if len(a.Pts) != len(b.Pts) {
		return fmt.Errorf("%d points vs %d", len(a.Pts), len(b.Pts))
	}
	for i := range a.Pts {
		p, q := a.Pts[i], b.Pts[i]
		if p.Val != q.Val {
			return fmt.Errorf("point %d: %v=%g vs %v=%g", i, p.Crd, p.Val, q.Crd, q.Val)
		}
		for m := range p.Crd {
			if p.Crd[m] != q.Crd[m] {
				return fmt.Errorf("point %d: %v=%g vs %v=%g", i, p.Crd, p.Val, q.Crd, q.Val)
			}
		}
	}
	return nil
}

// QuantizeInts replaces every stored value with a small nonzero integer
// drawn from [1, max]. Integer values keep floating-point sums exact
// regardless of association, so differential batteries that reassociate
// reductions — parallel lane partials, optimizer rewrites — can demand
// bit-identical outputs instead of tolerance comparisons.
func QuantizeInts(rng *rand.Rand, max int, ts ...*COO) {
	for _, t := range ts {
		for i := range t.Pts {
			t.Pts[i].Val = float64(rng.Intn(max) + 1)
		}
	}
}

// UniformRandomDensity generates a tensor where each component is nonzero
// independently with the given density.
func UniformRandomDensity(name string, rng *rand.Rand, density float64, dims ...int) *COO {
	total := 1
	for _, d := range dims {
		total *= d
	}
	nnz := int(density * float64(total))
	return UniformRandom(name, rng, nnz, dims...)
}

// RunsPair generates the paper's runs pattern (Figure 17): two vectors of
// length n with nnz nonzeros each, where one vector has stretches of length
// run between the nonzeros of the other, creating skippable gaps for
// coordinate-skipping intersection (Figure 13b).
func RunsPair(rng *rand.Rand, n, nnz, run int) (*COO, *COO) {
	b := NewCOO("b", n)
	c := NewCOO("c", n)
	// Alternate runs: b occupies a run, then c occupies a run, and so on,
	// until each has nnz nonzeros.
	pos := 0
	bn, cn := 0, 0
	for (bn < nnz || cn < nnz) && pos < n {
		for k := 0; k < run && pos < n && bn < nnz; k++ {
			b.Append(rng.Float64()*0.9+0.1, int64(pos))
			bn++
			pos++
		}
		for k := 0; k < run && pos < n && cn < nnz; k++ {
			c.Append(rng.Float64()*0.9+0.1, int64(pos))
			cn++
			pos++
		}
	}
	b.Sort()
	c.Sort()
	return b, c
}

// BlocksPair generates the paper's blocks pattern (Figure 17): two vectors
// with dense blocks of the given size placed throughout, sharing block
// positions so intersections within blocks are dense (Figure 13c).
func BlocksPair(rng *rand.Rand, n, nnz, block int) (*COO, *COO) {
	b := NewCOO("b", n)
	c := NewCOO("c", n)
	blocks := (nnz + block - 1) / block
	if blocks == 0 {
		return b, c
	}
	stride := n / blocks
	if stride < block {
		stride = block
	}
	bn, cn := 0, 0
	for k := 0; k < blocks; k++ {
		start := k * stride
		for i := 0; i < block && start+i < n; i++ {
			if bn < nnz {
				b.Append(rng.Float64()*0.9+0.1, int64(start+i))
				bn++
			}
			if cn < nnz {
				c.Append(rng.Float64()*0.9+0.1, int64(start+i))
				cn++
			}
		}
	}
	b.Sort()
	c.Sort()
	return b, c
}
