package bind

import (
	"math/rand"
	"strings"
	"testing"

	"sam/internal/custard"
	"sam/internal/fiber"
	"sam/internal/graph"
	"sam/internal/lang"
	"sam/internal/tensor"
)

// compile lowers a statement for binding tests.
func compile(t *testing.T, expr string, formats lang.Formats) *graph.Graph {
	t.Helper()
	e := lang.MustParse(expr)
	g, err := custard.Compile(e, formats, lang.Schedule{})
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	return g
}

// TestOperandsBindsEveryAccess checks storage is built per operand, in the
// scheduled mode order and with the requested level formats.
func TestOperandsBindsEveryAccess(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := compile(t, "X(i,j) = B(i,k) * C(k,j)", lang.Formats{
		"B": {Levels: []fiber.Format{fiber.Dense, fiber.Compressed}},
	})
	inputs := map[string]*tensor.COO{
		"B": tensor.UniformRandom("B", r, 40, 10, 8),
		"C": tensor.UniformRandom("C", r, 40, 8, 12),
	}
	bound, err := Operands(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bound) != 2 {
		t.Fatalf("bound %d operands, want 2", len(bound))
	}
	b, ok := bound["B"]
	if !ok {
		t.Fatal("operand B not bound")
	}
	if len(b.Levels) != 2 {
		t.Fatalf("B has %d levels", len(b.Levels))
	}
	if b.Levels[0].Kind() != fiber.Dense || b.Levels[1].Kind() != fiber.Compressed {
		t.Errorf("B level kinds = %v, %v", b.Levels[0].Kind(), b.Levels[1].Kind())
	}
	if got := len(bound["C"].Levels); got != 2 {
		t.Errorf("C has %d levels", got)
	}
}

// TestOperandsRepeatedTensor checks a tensor accessed twice binds once per
// occurrence under distinct operand names.
func TestOperandsRepeatedTensor(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := compile(t, "x(i) = B(i,j) * B(i,j)", nil)
	inputs := map[string]*tensor.COO{"B": tensor.UniformRandom("B", r, 20, 8, 8)}
	bound, err := Operands(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bound) != 2 {
		t.Fatalf("bound %d operands, want 2 (one per occurrence)", len(bound))
	}
	if _, ok := bound["B#2"]; !ok {
		t.Errorf("second occurrence not bound under a unique name; bound: %v", keys(bound))
	}
}

// TestOperandsMissingTensor checks the unbound-input diagnostic names the
// missing tensor.
func TestOperandsMissingTensor(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := compile(t, "x(i) = B(i,j) * c(j)", nil)
	_, err := Operands(g, map[string]*tensor.COO{
		"B": tensor.UniformRandom("B", r, 20, 8, 8),
	})
	if err == nil || !strings.Contains(err.Error(), `"c"`) {
		t.Errorf("missing input error = %v, want mention of c", err)
	}
}

// TestOperandsOrderZeroScalar checks order-0 operands bind as scalars.
func TestOperandsOrderZeroScalar(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := compile(t, "x(i) = alpha * B(i,j)", nil)
	alpha := tensor.NewCOO("alpha")
	alpha.Append(2.5)
	bound, err := Operands(g, map[string]*tensor.COO{
		"alpha": alpha,
		"B":     tensor.UniformRandom("B", r, 20, 8, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, ok := bound["alpha"]
	if !ok {
		t.Fatal("alpha not bound")
	}
	if len(a.Levels) != 0 || len(a.Vals) != 1 || a.Vals[0] != 2.5 {
		t.Errorf("alpha bound as %d levels, vals %v", len(a.Levels), a.Vals)
	}
}

// TestOutputDims resolves output dimensions from the referenced inputs and
// rejects missing or undersized references.
func TestOutputDims(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := compile(t, "X(i,j) = B(i,k) * C(k,j)", nil)
	inputs := map[string]*tensor.COO{
		"B": tensor.UniformRandom("B", r, 40, 10, 8),
		"C": tensor.UniformRandom("C", r, 40, 8, 12),
	}
	dims, err := OutputDims(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 2 || dims[0] != 10 || dims[1] != 12 {
		t.Errorf("dims = %v, want [10 12]", dims)
	}

	if _, err := OutputDims(g, map[string]*tensor.COO{"B": inputs["B"]}); err == nil {
		t.Error("missing dimension reference accepted")
	}
	bad := &graph.Graph{OutputDims: []graph.DimRef{{Tensor: "B", Mode: 9}}}
	if _, err := OutputDims(bad, inputs); err == nil {
		t.Error("out-of-range mode accepted")
	}
	neg := &graph.Graph{OutputDims: []graph.DimRef{{Tensor: "B", Mode: -5}}}
	if _, err := OutputDims(neg, inputs); err == nil {
		t.Error("negative mode accepted")
	}
}

func keys(m map[string]*fiber.Tensor) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
