// Package bind resolves a compiled SAM graph's operand bindings against
// concrete input tensors. Every executor (the cycle engines in internal/sim
// and the goroutine executor in internal/flow) needs the same two steps
// before running a graph: build each operand's fibertree storage in the
// scheduled mode order, and resolve the output dimension sizes. Centralizing
// them here keeps the engines free of duplicated binding plumbing.
package bind

import (
	"fmt"

	"sam/internal/fiber"
	"sam/internal/graph"
	"sam/internal/tensor"
)

// Operands builds each operand's fibertree storage from its source tensor,
// permuting mode orders and building the per-level storage the graph's
// formats request. Inputs are keyed by source tensor name; order-0 tensors
// are scalars.
func Operands(g *graph.Graph, inputs map[string]*tensor.COO) (map[string]*fiber.Tensor, error) {
	bound := make(map[string]*fiber.Tensor, len(g.Bindings))
	for _, bd := range g.Bindings {
		src, ok := inputs[bd.Source]
		if !ok {
			return nil, fmt.Errorf("bind: no input bound for tensor %q", bd.Source)
		}
		perm, err := src.Permute(bd.Operand, bd.ModeOrder)
		if err != nil {
			return nil, err
		}
		ft, err := perm.Build(bd.Formats...)
		if err != nil {
			return nil, err
		}
		bound[bd.Operand] = ft
	}
	return bound, nil
}

// OutputDims resolves the output level dimension sizes from the input
// tensors the graph's metadata references.
func OutputDims(g *graph.Graph, inputs map[string]*tensor.COO) ([]int, error) {
	dims := make([]int, 0, len(g.OutputDims))
	for _, d := range g.OutputDims {
		src, ok := inputs[d.Tensor]
		if !ok {
			return nil, fmt.Errorf("bind: output dimension references unbound tensor %q", d.Tensor)
		}
		if d.Mode >= src.Order() {
			return nil, fmt.Errorf("bind: output dimension references mode %d of order-%d tensor %q", d.Mode, src.Order(), d.Tensor)
		}
		dims = append(dims, src.Dims[d.Mode])
	}
	return dims, nil
}
