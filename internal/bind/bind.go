// Package bind resolves a compiled SAM graph's operand bindings against
// concrete input tensors. Every executor (the cycle engines in internal/sim
// and the goroutine executor in internal/flow) needs the same two steps
// before running a graph: build each operand's fibertree storage in the
// scheduled mode order, and resolve the output dimension sizes. Centralizing
// them here keeps the engines free of duplicated binding plumbing.
package bind

import (
	"fmt"
	"strconv"
	"strings"

	"sam/internal/fiber"
	"sam/internal/graph"
	"sam/internal/obs"
	"sam/internal/tensor"
)

// Cache memoizes built operand storage across runs. Lookup is keyed by the
// source tensor's identity (pointer) and the binding signature — operand
// name, mode order, and level formats — so an implementation that can prove
// a source tensor immutable (serve's named tensor store) returns the
// fibertree built by an earlier run and a warm reference skips binding
// entirely. Implementations must be safe for concurrent use, and stored
// trees are shared across concurrent runs, so every consumer must treat
// them as read-only (the engines already do: run state lives in per-run
// contexts, never in operand storage).
type Cache interface {
	// Lookup returns the memoized storage for (src, sig), if any.
	Lookup(src *tensor.COO, sig string) (*fiber.Tensor, bool)
	// Store offers freshly built storage for (src, sig). Implementations
	// that do not manage src (an inline request operand) simply drop it.
	Store(src *tensor.COO, sig string, ft *fiber.Tensor)
}

// Plan is the compile-time half of operand binding: the operand and output
// dimension metadata lifted out of a graph once, so that executors that run
// the same graph many times (sim.Program, the serving cache) pay only the
// input-dependent work — fibertree construction and dimension lookup — per
// request. A Plan is immutable after NewPlan and safe for concurrent use.
type Plan struct {
	bindings []graph.Binding
	dims     []graph.DimRef
	// sigs holds each binding's cache signature (operand, mode order,
	// formats), precomputed so cached binds pay no string building per run.
	sigs []string
}

// NewPlan captures a graph's binding metadata. The graph's Bindings and
// OutputDims slices are referenced, not copied; callers must not mutate the
// graph afterwards (compiled graphs are treated as immutable everywhere).
func NewPlan(g *graph.Graph) *Plan {
	return &Plan{bindings: g.Bindings, dims: g.OutputDims, sigs: bindingSigs(g.Bindings)}
}

// NewPlanFromParts builds a Plan from bare binding metadata, for callers that
// hold a graph's lifted metadata without the graph itself — a decoded program
// artifact carries exactly these two slices. The slices are referenced, not
// copied, under the same immutability contract as NewPlan.
func NewPlanFromParts(bindings []graph.Binding, dims []graph.DimRef) *Plan {
	return &Plan{bindings: bindings, dims: dims, sigs: bindingSigs(bindings)}
}

// bindingSigs precomputes each binding's cache signature.
func bindingSigs(bindings []graph.Binding) []string {
	sigs := make([]string, len(bindings))
	for i, bd := range bindings {
		var b strings.Builder
		b.WriteString(bd.Operand)
		b.WriteByte('|')
		for _, m := range bd.ModeOrder {
			b.WriteString(strconv.Itoa(m))
			b.WriteByte(',')
		}
		b.WriteByte('|')
		for _, f := range bd.Formats {
			b.WriteString(strconv.Itoa(int(f)))
			b.WriteByte(',')
		}
		sigs[i] = b.String()
	}
	return sigs
}

// Operands builds each operand's fibertree storage from its source tensor,
// permuting mode orders and building the per-level storage the plan's
// formats request. Inputs are keyed by source tensor name; order-0 tensors
// are scalars. This is the run-time half of binding: its cost scales with
// the input data, not the graph.
func (p *Plan) Operands(inputs map[string]*tensor.COO) (map[string]*fiber.Tensor, error) {
	return p.OperandsCached(inputs, nil)
}

// OperandsCached is Operands with a memoization layer: each binding first
// consults the cache for storage built by an earlier run over the same
// source tensor, and offers what it builds back. A nil cache degrades to
// plain Operands. Cached trees are shared read-only across runs, so this is
// only sound for sources the cache can prove immutable — the cache itself
// enforces that by declining Store for tensors it does not manage.
func (p *Plan) OperandsCached(inputs map[string]*tensor.COO, cache Cache) (map[string]*fiber.Tensor, error) {
	bound := make(map[string]*fiber.Tensor, len(p.bindings))
	for i, bd := range p.bindings {
		src, ok := inputs[bd.Source]
		if !ok {
			return nil, fmt.Errorf("bind: no input bound for tensor %q", bd.Source)
		}
		if cache != nil {
			if ft, ok := cache.Lookup(src, p.sigs[i]); ok {
				bound[bd.Operand] = ft
				continue
			}
		}
		ft, err := p.build(bd, src)
		if err != nil {
			return nil, err
		}
		if cache != nil {
			cache.Store(src, p.sigs[i], ft)
		}
		bound[bd.Operand] = ft
	}
	return bound, nil
}

// build constructs one operand's fibertree storage from its source tensor.
func (p *Plan) build(bd graph.Binding, src *tensor.COO) (*fiber.Tensor, error) {
	// Identity mode orders on already-sorted inputs skip the permute
	// clone entirely and build storage straight off the source points
	// (read-only, so concurrent jobs can share one input tensor). This
	// is the hot half of per-request binding: the permute copy used to
	// dominate compiled-engine runs end to end.
	if identityOrder(bd.ModeOrder) && src.SortedStrict() {
		return src.BuildNamed(bd.Operand, bd.Formats...)
	}
	perm, err := src.Permute(bd.Operand, bd.ModeOrder)
	if err != nil {
		return nil, err
	}
	return perm.Build(bd.Formats...)
}

// OperandsTraced is Operands wrapped in a "bind" trace span. A nil trace
// records nothing and adds only a nil check, so engines call this
// unconditionally.
func (p *Plan) OperandsTraced(inputs map[string]*tensor.COO, tr *obs.Trace) (map[string]*fiber.Tensor, error) {
	return p.BindTraced(inputs, nil, tr)
}

// BindTraced is OperandsCached wrapped in a "bind" trace span: the full
// run-time binding entry point the engines use.
func (p *Plan) BindTraced(inputs map[string]*tensor.COO, cache Cache, tr *obs.Trace) (map[string]*fiber.Tensor, error) {
	sp := tr.Start("bind")
	bound, err := p.OperandsCached(inputs, cache)
	sp.End()
	return bound, err
}

// identityOrder reports whether a mode order is the identity permutation.
func identityOrder(order []int) bool {
	for d, m := range order {
		if m != d {
			return false
		}
	}
	return true
}

// OutputDims resolves the output level dimension sizes from the input
// tensors the plan's metadata references.
func (p *Plan) OutputDims(inputs map[string]*tensor.COO) ([]int, error) {
	dims := make([]int, 0, len(p.dims))
	for _, d := range p.dims {
		src, ok := inputs[d.Tensor]
		if !ok {
			return nil, fmt.Errorf("bind: output dimension references unbound tensor %q", d.Tensor)
		}
		if d.Mode < 0 || d.Mode >= src.Order() {
			return nil, fmt.Errorf("bind: output dimension references mode %d of order-%d tensor %q", d.Mode, src.Order(), d.Tensor)
		}
		dims = append(dims, src.Dims[d.Mode])
	}
	return dims, nil
}

// Operands is the one-shot form of Plan.Operands for executors that do not
// reuse graphs across runs.
func Operands(g *graph.Graph, inputs map[string]*tensor.COO) (map[string]*fiber.Tensor, error) {
	return NewPlan(g).Operands(inputs)
}

// OutputDims is the one-shot form of Plan.OutputDims.
func OutputDims(g *graph.Graph, inputs map[string]*tensor.COO) ([]int, error) {
	return NewPlan(g).OutputDims(inputs)
}
