package comp

import (
	"slices"
	"sort"

	"sam/internal/token"
)

// stepReduce dispatches on the reducer dimension n (Definition 3.7):
// scalar, vector and matrix reducers have specialized merged loops; deeper
// reductions run the general n-dimensional accumulator. Reducer slots
// follow reducePorts order: RedN coordinate streams outermost first, then
// values, on both sides.
func stepReduce(si *StepIR) step {
	switch si.RedN {
	case 0:
		return stepScalarReduce(si)
	case 1:
		return stepVectorReduce(si)
	case 2:
		return stepMatrixReduce(si)
	}
	return stepTensorReduce(si)
}

// stepScalarReduce sums every innermost group of a value stream, lowering
// stops by one level and emitting explicit zeros for empty groups.
func stepScalarReduce(si *StepIR) step {
	in := si.Ins[0]
	out := si.Outs[0]
	return func(x *exec) {
		cv := x.cur(in)
		acc := 0.0
		for {
			t := cv.next()
			switch t.Kind {
			case token.Val:
				acc += t.V
			case token.Empty:
			case token.Stop:
				x.push(out, token.V(acc))
				acc = 0
				if t.StopLevel() >= 1 {
					x.push(out, token.S(t.StopLevel()-1))
				}
			case token.Done:
				x.push(out, token.D())
				return
			}
		}
	}
}

// stepVectorReduce merges the fibers within each group of a paired
// coordinate/value stream, emitting unique sorted coordinates with summed
// values.
func stepVectorReduce(si *StepIR) step {
	inCrd, inVal := si.Ins[0], si.Ins[1]
	outCrd, outVal := si.Outs[0], si.Outs[1]
	name := si.Label
	return func(x *exec) {
		cc, cv := x.cur(inCrd), x.cur(inVal)
		acc := x.a.accMap()
		for {
			ct := cc.next()
			v := cv.next()
			switch {
			case ct.IsVal() && (v.IsVal() || v.IsEmpty()):
				if v.IsVal() {
					acc[ct.N] += v.V
				} else if _, ok := acc[ct.N]; !ok {
					acc[ct.N] = 0
				}
			case ct.IsStop() && (v.IsVal() || v.IsEmpty()):
				if v.IsVal() && v.V != 0 {
					fail("%s: nonzero orphan value %v", name, v)
				}
				v = cv.next()
				for v.IsVal() || v.IsEmpty() {
					if v.IsVal() && v.V != 0 {
						fail("%s: nonzero orphan value %v", name, v)
					}
					v = cv.next()
				}
				if !v.IsStop() || v.StopLevel() != ct.StopLevel() {
					fail("%s: misaligned after orphan: %v vs %v", name, ct, v)
				}
				if ct.StopLevel() >= 1 {
					vecFlush(x, acc, outCrd, outVal, ct.StopLevel()-1)
				}
			case ct.IsStop() && v.IsStop() && ct.StopLevel() == v.StopLevel():
				if ct.StopLevel() >= 1 {
					vecFlush(x, acc, outCrd, outVal, ct.StopLevel()-1)
				}
			case ct.IsDone() && v.IsDone():
				x.push(outCrd, token.D())
				x.push(outVal, token.D())
				return
			default:
				fail("%s: misaligned inputs %v vs %v", name, ct, v)
			}
		}
	}
}

// vecFlush emits one merged group of the vector reducer — unique sorted
// coordinates with summed values, then the lowered stop — and empties the
// accumulator for the next group. The key buffer lives in the run arena so
// a warm flush allocates nothing.
func vecFlush(x *exec, acc map[int64]float64, outCrd, outVal, stop int) {
	keys := x.a.keyA[:0]
	for k := range acc {
		keys = append(keys, k)
	}
	x.a.keyA = keys
	slices.Sort(keys)
	for _, k := range keys {
		x.push(outCrd, token.C(k))
		x.push(outVal, token.V(acc[k]))
	}
	x.push(outCrd, token.S(stop))
	x.push(outVal, token.S(stop))
	clear(acc)
}

// stepMatrixReduce accumulates a two-level sub-tensor.
func stepMatrixReduce(si *StepIR) step {
	inOuter, inInner, inVal := si.Ins[0], si.Ins[1], si.Ins[2]
	outOuter, outInner, outVal := si.Outs[0], si.Outs[1], si.Outs[2]
	name := si.Label
	return func(x *exec) {
		co, ci, cv := x.cur(inOuter), x.cur(inInner), x.cur(inVal)
		acc := x.a.nestMap()
		var curOuter int64
		haveOuter := false
		for {
			ct := ci.next()
			v := cv.next()
			switch {
			case ct.IsVal() && (v.IsVal() || v.IsEmpty()):
				if !haveOuter {
					o := co.next()
					if !o.IsVal() {
						fail("%s: expected outer coordinate, got %v", name, o)
					}
					curOuter = o.N
					haveOuter = true
				}
				row := acc[curOuter]
				if row == nil {
					row = x.a.row()
					acc[curOuter] = row
				}
				if v.IsVal() {
					row[ct.N] += v.V
				} else if _, ok := row[ct.N]; !ok {
					row[ct.N] = 0
				}
			case ct.IsStop() && (v.IsVal() || v.IsEmpty()):
				// Orphan zeros from a structurally empty inner reduction:
				// discard until the matching stop arrives.
				for v.IsVal() || v.IsEmpty() {
					if v.IsVal() && v.V != 0 {
						fail("%s: nonzero orphan value %v", name, v)
					}
					v = cv.next()
				}
				if !v.IsStop() || v.StopLevel() != ct.StopLevel() {
					fail("%s: misaligned after orphan: %v vs %v", name, ct, v)
				}
				fallthrough
			case ct.IsStop() && v.IsStop() && ct.StopLevel() == v.StopLevel():
				m := ct.StopLevel()
				if m == 0 {
					if !haveOuter {
						o := co.next()
						if !o.IsVal() {
							fail("%s: expected outer coordinate for empty fiber, got %v", name, o)
						}
					}
					haveOuter = false
					continue
				}
				if !haveOuter {
					o := co.next()
					if o.IsVal() {
						// trailing empty inner fiber's outer coordinate
						o = co.next()
					}
					if !o.IsStop() || o.StopLevel() != m-1 {
						fail("%s: outer misaligned: %v vs inner %v", name, o, ct)
					}
				} else {
					o := co.next()
					if !o.IsStop() || o.StopLevel() != m-1 {
						fail("%s: outer misaligned: %v vs inner %v", name, o, ct)
					}
				}
				haveOuter = false
				if m >= 2 {
					matFlush(x, acc, outOuter, outInner, outVal, m-1)
				}
			case ct.IsDone() && v.IsDone():
				if o := co.next(); !o.IsDone() {
					fail("%s: outer stream not done: %v", name, o)
				}
				x.push(outOuter, token.D())
				x.push(outInner, token.D())
				x.push(outVal, token.D())
				return
			default:
				fail("%s: misaligned inputs %v vs %v", name, ct, v)
			}
		}
	}
}

// matFlush emits one merged group of the matrix reducer — rows in sorted
// outer order, each row's inner coordinates sorted, with the lowered stops —
// then recycles every row onto the arena's free list for the next group.
func matFlush(x *exec, acc map[int64]map[int64]float64, outOuter, outInner, outVal, stop int) {
	is := x.a.keyA[:0]
	for i := range acc {
		is = append(is, i)
	}
	x.a.keyA = is
	slices.Sort(is)
	for pos, i := range is {
		if pos > 0 {
			x.push(outInner, token.S(0))
			x.push(outVal, token.S(0))
		}
		x.push(outOuter, token.C(i))
		row := acc[i]
		js := x.a.keyB[:0]
		for j := range row {
			js = append(js, j)
		}
		x.a.keyB = js
		slices.Sort(js)
		for _, j := range js {
			x.push(outInner, token.C(j))
			x.push(outVal, token.V(row[j]))
		}
	}
	x.push(outOuter, token.S(stop-1))
	x.push(outInner, token.S(stop))
	x.push(outVal, token.S(stop))
	// Recycle rows in sorted-key order, not map order: deterministic free-
	// list order keeps each reused row paired with same-sized groups across
	// identical runs, so warm runs never regrow row buckets.
	for _, i := range is {
		row := acc[i]
		clear(row)
		x.a.rows = append(x.a.rows, row)
		delete(acc, i)
	}
}

// packKey packs a coordinate tuple into a map key.
func packKey(crd []int64) string {
	b := make([]byte, 0, len(crd)*8)
	for _, c := range crd {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(c>>uint(s)))
		}
	}
	return string(b)
}

// stepTensorReduce is the general n-dimensional reducer (n >= 3): n
// coordinate streams, outermost first, plus values. Stream pairing follows
// core.TensorReducer: outer stream j is shallower by offset = n-1-j levels,
// groups close at innermost stops of level >= n, and emission lowers every
// group-closing stop by one level.
func stepTensorReduce(si *StepIR) step {
	n := si.RedN
	inCrd := si.Ins[:n]
	inVal := si.Ins[n]
	outCrd := si.Outs[:n]
	outVal := si.Outs[n]
	name := si.Label
	return func(x *exec) {
		ic := x.curs(inCrd)
		iv := x.cur(inVal)
		acc := map[string]float64{}
		keys := map[string][]int64{}
		cur := make([]int64, n)
		have := make([]bool, n)
		flush := func(closeLvl int) {
			points := make([][]int64, 0, len(keys))
			for _, crd := range keys {
				points = append(points, crd)
			}
			sort.Slice(points, func(i, j int) bool {
				a, b := points[i], points[j]
				for k := range a {
					if a[k] != b[k] {
						return a[k] < b[k]
					}
				}
				return false
			})
			for i, crd := range points {
				change := 0
				if i > 0 {
					prev := points[i-1]
					for change < n && prev[change] == crd[change] {
						change++
					}
					if change < n-1 {
						// Separator: stream j closes j-change-1 nesting levels.
						for j := change + 1; j < n; j++ {
							x.push(outCrd[j], token.S(j-change-1))
						}
						x.push(outVal, token.S(n-change-2))
					}
				}
				for j := change; j < n; j++ {
					x.push(outCrd[j], token.C(crd[j]))
				}
				x.push(outVal, token.V(acc[packKey(crd)]))
			}
			// Group-closing stops, lowered by one level on every stream.
			for j := 0; j < n; j++ {
				offset := n - 1 - j
				x.push(outCrd[j], token.S(closeLvl-1-offset))
			}
			x.push(outVal, token.S(closeLvl-1))
			acc = map[string]float64{}
			keys = map[string][]int64{}
		}
		for {
			tc := ic[n-1].peek()
			tv := iv.peek()
			switch {
			case tc.IsVal() && (tv.IsVal() || tv.IsEmpty()):
				for j := 0; j < n-1; j++ {
					if have[j] {
						continue
					}
					to := ic[j].next()
					if !to.IsVal() {
						fail("%s: expected outer coordinate on stream %d, got %v", name, j, to)
					}
					cur[j] = to.N
					have[j] = true
				}
				ic[n-1].next()
				iv.next()
				cur[n-1] = tc.N
				k := packKey(cur)
				if _, seen := acc[k]; !seen {
					keys[k] = append([]int64(nil), cur...)
					acc[k] = 0
				}
				if tv.IsVal() {
					acc[k] += tv.V
				}
			case tc.IsStop() && (tv.IsVal() || tv.IsEmpty()):
				// Orphan zero from a structurally empty inner reduction.
				if tv.IsVal() && tv.V != 0 {
					fail("%s: nonzero orphan value %v at stop %v", name, tv, tc)
				}
				iv.next()
			case tc.IsStop() && tv.IsStop():
				if tc.StopLevel() != tv.StopLevel() {
					fail("%s: misaligned stops S%d vs S%d", name, tc.StopLevel(), tv.StopLevel())
				}
				m := tc.StopLevel()
				// Consume paired stops on outer streams (discarding at most
				// one pending coordinate from an empty trailing fiber each).
				for j := 0; j < n-1; j++ {
					offset := n - 1 - j
					if m < offset {
						continue
					}
					to := ic[j].peek()
					if to.IsVal() {
						ic[j].next()
						to = ic[j].peek()
					}
					if !to.IsStop() || to.StopLevel() != m-offset {
						fail("%s: outer stream %d misaligned: %v vs inner %v", name, j, to, tc)
					}
					ic[j].next()
				}
				ic[n-1].next()
				iv.next()
				// A stream's current coordinate spans a subtree of offset
				// levels below it; it retires when the stop closes it.
				for j := range have {
					offset := n - 1 - j
					if m >= offset-1 {
						have[j] = false
					}
				}
				if m >= n {
					flush(m)
				}
			case tc.IsDone() && tv.IsDone():
				for j := 0; j < n-1; j++ {
					if to := ic[j].next(); !to.IsDone() {
						fail("%s: outer stream %d misaligned at done: %v", name, j, to)
					}
				}
				ic[n-1].next()
				iv.next()
				for _, o := range outCrd {
					x.push(o, token.D())
				}
				x.push(outVal, token.D())
				return
			default:
				fail("%s: misaligned inputs %v vs %v", name, tc, tv)
			}
		}
	}
}
