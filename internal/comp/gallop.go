package comp

import (
	"sort"

	"sam/internal/fiber"
	"sam/internal/token"
)

// gallopTo returns the first position in [pos, n) of the level's fiber f
// whose coordinate is >= target, by binary search (the batch analogue of the
// cycle engine's galloping probe — the skip itself costs nothing here, so
// only the emitted token sequence matters).
func gallopTo(lvl fiber.Level, f, pos, n int, target int64) int {
	return pos + sort.Search(n-pos, func(i int) bool { return lvl.Coord(f, pos+i) >= target })
}

// stepGallop is the coordinate-skipping intersection of paper Section 4.2
// as one merged loop: each pair of fiber references co-iterates the two
// storage levels directly, matching coordinates with a gallop-advance loop
// and emitting the matched coordinate plus both child references.
func stepGallop(si *StepIR) step {
	inA, inB := si.Ins[0], si.Ins[1]
	outCrd, outRefA, outRefB := si.Outs[0], si.Outs[1], si.Outs[2]
	opA, lvA := si.Tensor, si.Level
	opB, lvB := si.TensorB, si.LevelB
	name := si.Label
	return func(x *exec) {
		la := x.level(name, opA, lvA)
		lb := x.level(name, opB, lvB)
		ca, cb := x.cur(inA), x.cur(inB)
		sep := false
		for {
			ta := ca.next()
			tb := cb.next()
			switch {
			case (ta.IsVal() || ta.IsEmpty()) && (tb.IsVal() || tb.IsEmpty()):
				if sep {
					x.push(outCrd, token.S(0))
					x.push(outRefA, token.S(0))
					x.push(outRefB, token.S(0))
					sep = false
				}
				if ta.IsEmpty() || tb.IsEmpty() {
					// An absent fiber on either side empties the intersection.
					sep = true
					continue
				}
				fa, fb := int(ta.N), int(tb.N)
				pa, na := 0, la.FiberLen(fa)
				pb, nb := 0, lb.FiberLen(fb)
				for pa < na && pb < nb {
					cca := la.Coord(fa, pa)
					ccb := lb.Coord(fb, pb)
					switch {
					case cca == ccb:
						x.push(outCrd, token.C(cca))
						x.push(outRefA, token.C(la.ChildRef(fa, pa)))
						x.push(outRefB, token.C(lb.ChildRef(fb, pb)))
						pa++
						pb++
					case cca < ccb:
						pa = gallopTo(la, fa, pa, na, ccb)
					default:
						pb = gallopTo(lb, fb, pb, nb, cca)
					}
				}
				sep = true
			case ta.IsStop() && tb.IsStop():
				if ta.StopLevel() != tb.StopLevel() {
					fail("%s: misaligned stops %v vs %v", name, ta, tb)
				}
				sep = false
				s := token.S(ta.StopLevel() + 1)
				x.push(outCrd, s)
				x.push(outRefA, s)
				x.push(outRefB, s)
			case ta.IsDone() && tb.IsDone():
				if sep {
					x.push(outCrd, token.S(0))
					x.push(outRefA, token.S(0))
					x.push(outRefB, token.S(0))
				}
				x.push(outCrd, token.D())
				x.push(outRefA, token.D())
				x.push(outRefB, token.D())
				return
			default:
				fail("%s: misaligned reference inputs %v vs %v", name, ta, tb)
			}
		}
	}
}
