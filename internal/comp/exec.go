package comp

import (
	"fmt"
	"slices"
	"strconv"
	"sync"

	"sam/internal/fiber"
	"sam/internal/obs"
	"sam/internal/tensor"
	"sam/internal/token"
)

// This file is the throughput-oriented execution layer of the compiled
// engine: reusable run contexts with arena-backed scratch memory, a
// per-Program sync.Pool of contexts so warm runs allocate nothing, and the
// goroutine fork/join executor for lane-parallel plans (see lanes.go).

// arena is per-run scratch memory checked out by lowered closures. All
// checkout paths reuse slab capacity from earlier runs on the same context;
// growth happens only while a context is cold. Each lane of a parallel plan
// owns a private arena, so closures never share scratch across goroutines.
type arena struct {
	curs []cursor
	curN int
	ptrs []*cursor
	ptrN int
	toks []token.Tok
	tokN int

	// Reducer scratch: key sort buffers, accumulator maps (cleared at
	// checkout, so a context poisoned by a failed run self-heals), and a
	// free list of matrix-reduce rows.
	keyA  []int64
	keyB  []int64
	accs  []map[int64]float64
	accN  int
	nests []map[int64]map[int64]float64
	nestN int
	rows  []map[int64]float64
}

// reset returns every checkout to the arena without releasing capacity.
func (a *arena) reset() {
	a.curN, a.ptrN, a.tokN, a.accN, a.nestN = 0, 0, 0, 0, 0
}

// cursor checks out one stream cursor. Growing the slab moves earlier
// cursors to a new backing array; pointers handed out before the move stay
// valid (they keep the old backing alive) and the stale copies in the new
// backing are never read, because every checkout reinitializes its slot.
func (a *arena) cursor(s token.Stream) *cursor {
	if a.curN == len(a.curs) {
		a.curs = append(a.curs, cursor{})
	}
	c := &a.curs[a.curN]
	a.curN++
	c.s, c.i = s, 0
	return c
}

// cursors checks out a cursor family over stream slots.
func (a *arena) cursors(x *exec, slots []int) []*cursor {
	need := a.ptrN + len(slots)
	if need > len(a.ptrs) {
		a.ptrs = append(a.ptrs, make([]*cursor, need-len(a.ptrs))...)
	}
	out := a.ptrs[a.ptrN:need:need]
	a.ptrN = need
	for i, s := range slots {
		out[i] = a.cursor(x.streams[s])
	}
	return out
}

// tokens checks out a token scratch slice; contents are unspecified, the
// caller initializes every element.
func (a *arena) tokens(n int) []token.Tok {
	need := a.tokN + n
	if need > len(a.toks) {
		a.toks = append(a.toks, make([]token.Tok, need-len(a.toks))...)
	}
	out := a.toks[a.tokN:need:need]
	a.tokN = need
	return out
}

// accMap checks out an empty accumulator map.
func (a *arena) accMap() map[int64]float64 {
	if a.accN == len(a.accs) {
		a.accs = append(a.accs, map[int64]float64{})
	}
	m := a.accs[a.accN]
	a.accN++
	clear(m)
	return m
}

// nestMap checks out an empty two-level accumulator, recycling any rows a
// failed run left behind.
func (a *arena) nestMap() map[int64]map[int64]float64 {
	if a.nestN == len(a.nests) {
		a.nests = append(a.nests, map[int64]map[int64]float64{})
	}
	m := a.nests[a.nestN]
	a.nestN++
	for k, row := range m {
		clear(row)
		a.rows = append(a.rows, row)
		delete(m, k)
	}
	return m
}

// row checks out an empty matrix-reduce row from the free list.
func (a *arena) row() map[int64]float64 {
	if n := len(a.rows); n > 0 {
		r := a.rows[n-1]
		a.rows = a.rows[:n-1]
		return r
	}
	return map[int64]float64{}
}

// RunCtx is the reusable state of one execution: the per-slot stream
// buffers, per-lane exec views with private arenas, and the output-assembly
// scratch. A context belongs to the Program that created it and must not be
// used by two runs concurrently; Program.Run checks contexts out of an
// internal sync.Pool, or callers hold one explicitly via NewCtx/RunPooled.
type RunCtx struct {
	p       *Program
	streams []token.Stream

	main      exec
	mainArena arena
	lane      []exec
	laneArena []arena
	laneErr   []any
	wg        sync.WaitGroup

	// Assembly scratch: the reused output fibertree, its levels, the
	// coordinate scratch of the emit walk, and the flat point/coordinate
	// slabs backing the borrowed output tensor.
	ft   fiber.Tensor
	lvls []*fiber.CompressedLevel
	cur  []int64
	slab []int64
	pts  []tensor.Point
	out  tensor.COO
	dims []int
}

// NewCtx builds a fresh run context for the program, preallocating stream
// buffers to the program's high-water capacity hints.
func (p *Program) NewCtx() *RunCtx {
	rc := &RunCtx{p: p, streams: make([]token.Stream, p.nSlot)}
	for i := range rc.streams {
		if n := p.hints[i].Load(); n > 0 {
			rc.streams[i] = make(token.Stream, 0, n)
		}
	}
	rc.main = exec{streams: rc.streams, a: &rc.mainArena}
	if p.plan != nil {
		ways := p.plan.ways
		rc.lane = make([]exec, ways)
		rc.laneArena = make([]arena, ways)
		rc.laneErr = make([]any, ways)
		for l := range rc.lane {
			rc.lane[l] = exec{streams: rc.streams, a: &rc.laneArena[l]}
		}
	}
	order := len(p.ir.OutputVars)
	rc.cur = make([]int64, order)
	rc.lvls = make([]*fiber.CompressedLevel, order)
	for i := range rc.lvls {
		rc.lvls[i] = &fiber.CompressedLevel{}
	}
	return rc
}

// reset prepares the context for one run: stream buffers truncated (regrown
// only if the program's capacity hints outgrew this context), arenas
// rewound, and the operand binding installed on every exec view.
func (rc *RunCtx) reset(bound map[string]*fiber.Tensor, dims []int) {
	p := rc.p
	for i := range rc.streams {
		if n := p.hints[i].Load(); int64(cap(rc.streams[i])) < n {
			rc.streams[i] = make(token.Stream, 0, n)
		} else {
			rc.streams[i] = rc.streams[i][:0]
		}
	}
	rc.mainArena.reset()
	rc.main.bound, rc.main.dims = bound, dims
	for l := range rc.lane {
		rc.laneArena[l].reset()
		rc.lane[l].bound, rc.lane[l].dims = bound, dims
		rc.laneErr[l] = nil
	}
}

// getCtx checks a context out of the program's pool.
func (p *Program) getCtx() *RunCtx {
	if rc, ok := p.pool.Get().(*RunCtx); ok {
		return rc
	}
	return p.NewCtx()
}

// Run executes the program against one operand binding and assembles the
// output tensor. The context comes from the program's pool, so warm runs
// reuse every buffer of an earlier run; the returned tensor is cloned out of
// the context (the only allocations on the warm path). bound and dims come
// from the graph's bind.Plan (sim owns that split); RunGraph is the one-shot
// convenience.
func (p *Program) Run(bound map[string]*fiber.Tensor, dims []int) (*tensor.COO, error) {
	return p.RunTraced(bound, dims, nil)
}

// RunTraced is Run with phase tracing: the execution records "run" (with one
// child span per lane goroutine in parallel plans) and "assemble" spans into
// tr. A nil tr records nothing and makes RunTraced exactly Run — the hooks
// cost a nil check and nothing else.
func (p *Program) RunTraced(bound map[string]*fiber.Tensor, dims []int, tr *obs.Trace) (*tensor.COO, error) {
	rc := p.getCtx()
	out, err := p.runCtx(rc, bound, dims, false, tr)
	if err != nil {
		p.pool.Put(rc)
		return nil, err
	}
	out = cloneCOO(out)
	p.pool.Put(rc)
	return out, nil
}

// RunMerged executes the program with lane regions forced onto the calling
// goroutine as one merged sequential loop, regardless of the compiled plan.
// It is the differential oracle for the goroutine executor: outputs must be
// bit-identical to Run's.
func (p *Program) RunMerged(bound map[string]*fiber.Tensor, dims []int) (*tensor.COO, error) {
	rc := p.getCtx()
	out, err := p.runCtx(rc, bound, dims, true, nil)
	if err != nil {
		p.pool.Put(rc)
		return nil, err
	}
	out = cloneCOO(out)
	p.pool.Put(rc)
	return out, nil
}

// RunPooled executes the program on a caller-held context and returns the
// assembled output borrowed from the context: the tensor and its points are
// valid only until the next run on rc. A warm RunPooled call performs zero
// heap allocations; this is the serve hot path and the alloc-gate target.
func (p *Program) RunPooled(rc *RunCtx, bound map[string]*fiber.Tensor, dims []int) (*tensor.COO, error) {
	if rc.p != p {
		return nil, fmt.Errorf("comp: run context belongs to a different program")
	}
	return p.runCtx(rc, bound, dims, false, nil)
}

// runCtx is the shared run core: reset, execute (parallel or merged),
// raise capacity hints, assemble. tr, when non-nil, gets a "run" span (with
// per-lane children) and an "assemble" span.
func (p *Program) runCtx(rc *RunCtx, bound map[string]*fiber.Tensor, dims []int, merged bool, tr *obs.Trace) (out *tensor.COO, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, ok := r.(violation)
			if !ok {
				panic(r)
			}
			out, err = nil, v.err
		}
	}()
	rc.reset(bound, dims)
	run := tr.Start("run")
	if p.plan != nil && !merged {
		p.runLanes(rc, run)
	} else {
		for _, st := range p.steps {
			st(&rc.main)
		}
	}
	for i := range rc.streams {
		n := int64(len(rc.streams[i]))
		for {
			cur := p.hints[i].Load()
			if n <= cur || p.hints[i].CompareAndSwap(cur, n) {
				break
			}
		}
	}
	run.End()
	asm := tr.Start("assemble")
	out, err = p.assemble(rc)
	asm.End()
	return out, err
}

// runLanes executes a compiled lane plan: the pre region on the calling
// goroutine, one goroutine per lane over the lane's closure chain, a
// WaitGroup fork barrier, then the post region (serializers, lane reducers,
// writers) on the calling goroutine. Lanes write disjoint stream slots, so
// the only synchronization needed is the barrier's happens-before edge; a
// panic inside a lane is captured and re-raised on the calling goroutine
// after every lane has parked. When the run span records, each lane gets a
// child span measured on its own goroutine.
func (p *Program) runLanes(rc *RunCtx, run obs.Span) {
	plan := p.plan
	for _, st := range plan.pre {
		st(&rc.main)
	}
	for l := range plan.lanes {
		if len(plan.lanes[l]) == 0 {
			continue
		}
		rc.wg.Add(1)
		go func(l int) {
			defer rc.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					rc.laneErr[l] = r
				}
			}()
			var sp obs.Span
			if run.Active() {
				sp = run.Child("lane" + strconv.Itoa(l))
			}
			x := &rc.lane[l]
			for _, st := range plan.lanes[l] {
				st(x)
			}
			sp.End()
		}(l)
	}
	rc.wg.Wait()
	for l := range rc.laneErr {
		if r := rc.laneErr[l]; r != nil {
			panic(r)
		}
	}
	for _, st := range plan.post {
		st(&rc.main)
	}
}

// assemble materializes the output tensor from the writer streams into the
// context's reusable buffers, exactly as the other engines do: compressed
// levels from the coordinate streams' stop structure, values in stream
// order, empty-level reconciliation for optimized graphs, validation, and
// the permute to the declared left-hand-side order (skipping the sort when
// the permutation is the identity, where the fibertree walk is already
// lexicographic).
func (p *Program) assemble(rc *RunCtx) (*tensor.COO, error) {
	ir := p.ir
	x := &rc.main
	order := len(ir.OutputVars)
	valRec := x.streams[p.valsWr.slot]
	if err := valRec.Validate(order); err != nil {
		return nil, fmt.Errorf("comp: writer %q stream malformed: %w", p.valsWr.label, err)
	}
	ft := &rc.ft
	ft.Name = ir.OutputTensor
	ft.Dims = x.dims
	ft.Vals = ft.Vals[:0]
	for _, t := range valRec {
		if t.IsVal() {
			ft.Vals = append(ft.Vals, t.V)
		} else if t.IsEmpty() {
			ft.Vals = append(ft.Vals, 0)
		}
	}
	ft.Levels = ft.Levels[:0]
	for lvl := 0; lvl < order; lvl++ {
		w, ok := p.crdWr[lvl]
		if !ok {
			return nil, fmt.Errorf("comp: no writer produced output level %d", lvl)
		}
		rec := x.streams[w.slot]
		if err := rec.Validate(lvl + 1); err != nil {
			return nil, fmt.Errorf("comp: writer %q stream malformed: %w", w.label, err)
		}
		L := rc.lvls[lvl]
		L.N = x.dims[lvl]
		L.Seg = append(L.Seg[:0], 0)
		L.Crd = L.Crd[:0]
		for _, t := range rec {
			switch t.Kind {
			case token.Val:
				L.Crd = append(L.Crd, int32(t.N))
			case token.Stop:
				L.Seg = append(L.Seg, int32(len(L.Crd)))
			}
		}
		if len(L.Crd) == 0 && lvl > 0 {
			// Empty-result artifact: no parent coordinates, so no fibers.
			L.Seg = L.Seg[:1]
		}
		ft.Levels = append(ft.Levels, L)
	}
	// Optimized graphs bypass coordinate-mode droppers; rebuild the fiber
	// count of all-empty levels from the parent, as the other engines do.
	if ir.OptLevel > 0 {
		ft.NormalizeEmptyLevels()
	}
	if err := ft.Validate(); err != nil {
		return nil, fmt.Errorf("comp: assembled output invalid: %w", err)
	}
	if p.permErr != nil {
		return nil, p.permErr
	}
	rc.pts = rc.pts[:0]
	rc.slab = rc.slab[:0]
	if order == 0 {
		if len(ft.Vals) > 0 {
			rc.pts = append(rc.pts, tensor.Point{Crd: []int64{}, Val: ft.Vals[0]})
		}
	} else {
		rc.emit(0, 0)
	}
	if !p.idPerm {
		slices.SortFunc(rc.pts, func(a, b tensor.Point) int {
			for i := range a.Crd {
				if a.Crd[i] != b.Crd[i] {
					if a.Crd[i] < b.Crd[i] {
						return -1
					}
					return 1
				}
			}
			return 0
		})
	}
	rc.dims = rc.dims[:0]
	for _, pd := range p.perm {
		rc.dims = append(rc.dims, x.dims[pd])
	}
	rc.out.Name = ir.OutputTensor
	rc.out.Dims = rc.dims
	if order == 0 {
		rc.out.Dims = nil
	}
	rc.out.Pts = rc.pts
	if len(rc.pts) == 0 {
		rc.out.Pts = nil
	}
	return &rc.out, nil
}

// emit recursively walks the assembled fibertree, appending one output
// point per stored leaf. Coordinates are emitted already permuted to the
// left-hand-side order into a shared flat slab; every tuple of a valid
// fibertree is distinct, so no duplicate merging is needed and explicit
// zeros are kept, exactly like tensor.FromFiber followed by Permute.
func (rc *RunCtx) emit(lvl, ref int) {
	L := rc.lvls[lvl]
	leaf := lvl == len(rc.cur)-1
	m := L.FiberLen(ref)
	for i := 0; i < m; i++ {
		rc.cur[lvl] = L.Coord(ref, i)
		child := L.ChildRef(ref, i)
		if !leaf {
			rc.emit(lvl+1, int(child))
			continue
		}
		base := len(rc.slab)
		for _, pd := range rc.p.perm {
			rc.slab = append(rc.slab, rc.cur[pd])
		}
		rc.pts = append(rc.pts, tensor.Point{
			Crd: rc.slab[base:len(rc.slab):len(rc.slab)],
			Val: rc.ft.Vals[child],
		})
	}
}

// cloneCOO copies a context-borrowed output into caller-owned memory: one
// point slice plus one flat coordinate slab, preserving nil-ness of Dims,
// Pts and per-point Crd so the JSON encoding matches the other engines'.
func cloneCOO(src *tensor.COO) *tensor.COO {
	out := &tensor.COO{Name: src.Name}
	if src.Dims != nil {
		out.Dims = make([]int, len(src.Dims))
		copy(out.Dims, src.Dims)
	}
	if src.Pts == nil {
		return out
	}
	total := 0
	for _, p := range src.Pts {
		total += len(p.Crd)
	}
	slab := make([]int64, 0, total)
	out.Pts = make([]tensor.Point, len(src.Pts))
	for i, p := range src.Pts {
		out.Pts[i].Val = p.Val
		if p.Crd == nil {
			continue
		}
		base := len(slab)
		slab = append(slab, p.Crd...)
		out.Pts[i].Crd = slab[base:len(slab):len(slab)]
	}
	return out
}
