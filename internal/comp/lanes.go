package comp

import "sam/internal/graph"

// This file builds the lane-parallel execution plan of a compiled program.
// The lowered closures themselves are execution-strategy agnostic — each
// reads fully materialized input streams and appends to its own output
// slots — so parallelism is purely a scheduling question: which steps can
// run on per-lane goroutines between the parallelizer fork and the
// serializer/lane-reduce join. buildPlan answers it with a dataflow tagging
// pass over the step list; runLanes (exec.go) executes the result. The plan
// is derived state: Materialize recomputes it from the IR on every load, so
// a serialized artifact can never carry an unsound plan.

// Region tags. Lane indices are >= 0.
const (
	tagPre  = -1 // runs before the fork barrier, on the calling goroutine
	tagPost = -2 // runs after the barrier (joins, writers' consumers)
)

// stepInfo pairs one lowered step's IR record (the dataflow: kind, ways,
// and the stream slots it reads and writes) with its bound closure.
type stepInfo struct {
	si   *StepIR
	step step
}

// execPlan partitions the program's steps into a sequential prefix, one
// closure chain per lane, and a sequential suffix. Index order is preserved
// within each partition, so producers still precede consumers.
type execPlan struct {
	ways  int
	pre   []step
	lanes [][]step
	post  []step
}

// buildPlan derives the lane plan from the lowered steps' dataflow, or
// returns nil when the graph should run sequentially (no Parallelize
// blocks, disagreeing lane widths, nested forks, or no step ended up on a
// lane).
//
// Forward pass: every slot starts in the pre region. A Parallelize step
// (which must read only pre slots — a fork fed by another fork's lane
// degrades the whole program to sequential) tags its i-th output slot with
// lane i. Any other step joins the region of its inputs: all pre stays pre,
// pre plus exactly one lane joins that lane, and mixing lanes (or reading a
// post slot) makes it post — that is where serializers and lane reducers
// land. Backward pass: a pre step whose outputs feed exactly one lane (and
// no writer slot, which assembly reads after the barrier) is pulled into
// that lane, so per-lane scanner/array chains hanging off shared pre
// streams run inside the lane goroutine; processing steps in reverse order
// lets whole chains cascade lane-ward in one pass.
//
// Safety: a lane step reads only pre slots (fully written before the fork)
// and its own lane's slots; lanes write disjoint slots of the shared stream
// table, so distinct goroutines never touch the same element and the fork
// barrier provides the happens-before edges.
func buildPlan(nSlot int, infos []stepInfo, crdWr map[int]writerRec, valsWr *writerRec) *execPlan {
	ways := 0
	for _, in := range infos {
		if in.si.Kind == graph.Parallelize {
			if ways == 0 {
				ways = in.si.Ways
			} else if ways != in.si.Ways {
				return nil
			}
		}
	}
	if ways < 2 {
		return nil
	}

	slotTag := make([]int, nSlot)
	for i := range slotTag {
		slotTag[i] = tagPre
	}
	stepTag := make([]int, len(infos))
	for j, in := range infos {
		if in.si.Kind == graph.Parallelize {
			for _, s := range in.si.Ins {
				if slotTag[s] != tagPre {
					return nil
				}
			}
			if len(in.si.Outs) != ways {
				return nil
			}
			stepTag[j] = tagPre
			for lane, s := range in.si.Outs {
				if s >= 0 {
					slotTag[s] = lane
				}
			}
			continue
		}
		t := tagPre
		for _, s := range in.si.Ins {
			st := slotTag[s]
			if st == tagPre || st == t {
				continue
			}
			if t == tagPre && st != tagPost {
				t = st
				continue
			}
			t = tagPost
			break
		}
		stepTag[j] = t
		for _, s := range in.si.Outs {
			if s >= 0 {
				slotTag[s] = t
			}
		}
	}

	// Backward refinement.
	cons := make([][]int, nSlot)
	for j, in := range infos {
		for _, s := range in.si.Ins {
			cons[s] = append(cons[s], j)
		}
	}
	writerSlot := make([]bool, nSlot)
	for _, w := range crdWr {
		writerSlot[w.slot] = true
	}
	writerSlot[valsWr.slot] = true
	for j := len(infos) - 1; j >= 0; j-- {
		if stepTag[j] != tagPre || infos[j].si.Kind == graph.Parallelize {
			continue
		}
		lane := tagPre
		ok, any := true, false
		for _, s := range infos[j].si.Outs {
			if s < 0 {
				continue
			}
			if writerSlot[s] {
				ok = false
				break
			}
			for _, cj := range cons[s] {
				any = true
				ct := stepTag[cj]
				if ct < 0 || (lane >= 0 && lane != ct) {
					ok = false
					break
				}
				lane = ct
			}
			if !ok {
				break
			}
		}
		if ok && any && lane >= 0 {
			stepTag[j] = lane
			for _, s := range infos[j].si.Outs {
				if s >= 0 {
					slotTag[s] = lane
				}
			}
		}
	}

	plan := &execPlan{ways: ways, lanes: make([][]step, ways)}
	onLane := 0
	for j, in := range infos {
		switch t := stepTag[j]; t {
		case tagPre:
			plan.pre = append(plan.pre, in.step)
		case tagPost:
			plan.post = append(plan.post, in.step)
		default:
			plan.lanes[t] = append(plan.lanes[t], in.step)
			onLane++
		}
	}
	if onLane == 0 {
		return nil
	}
	return plan
}
