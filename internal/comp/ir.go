package comp

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sam/internal/graph"
	"sam/internal/lang"
)

// This file splits the compiled engine into the two halves a portable
// program artifact needs: Lower turns a graph into a flat, serializable
// intermediate form (IR), and Materialize turns an IR — freshly lowered or
// decoded from bytes by internal/prog — back into an executable Program.
// Compile is Lower followed by Materialize, so the closure engine and the
// artifact interpreter share one lowering: a decoded artifact executes the
// exact same closure bodies a direct compilation would, which is what makes
// the two engines bit-identical by construction.

// StepIR is one lowered step in serializable form: the block kind, the
// stream slots it reads and writes, and the block parameters its closure
// captures. Ins and Outs list slots in the canonical port order of
// graph.InPorts/graph.OutPorts for the kind (so an Intersect's Ins
// interleave crd0,ref0,crd1,ref1,… and a Parallelize's Outs index is its
// lane number). Slot -1 in Outs marks a discarded output.
type StepIR struct {
	Kind  graph.Kind
	Label string
	Ins   []int
	Outs  []int

	// Block parameters, mirroring the graph.Node fields the closures use.
	Tensor  string
	TensorB string
	Level   int
	LevelB  int
	Ways    int
	Op      lang.Op
	RedN    int
	DropVal bool
}

// node reconstructs a parameter-equivalent graph.Node, used to derive the
// canonical port layout (and so the expected Ins/Outs lengths) for
// validation.
func (si *StepIR) node() *graph.Node {
	return &graph.Node{
		Kind: si.Kind, Label: si.Label,
		Tensor: si.Tensor, TensorB: si.TensorB,
		Level: si.Level, LevelB: si.LevelB,
		Ways: si.Ways, Op: si.Op, RedN: si.RedN, DropVal: si.DropVal,
	}
}

// WriterIR records one output writer: assembly reads its input stream slot
// directly instead of running a closure. Level is the output level a
// coordinate writer materializes (unused for the value writer).
type WriterIR struct {
	Level int
	Slot  int
	Label string
}

// IR is a complete lowered program in flat, serializable form: the step
// list in execution order, the writer table, the stream-slot count, and the
// graph metadata execution needs without the graph — operand bindings and
// output-dimension references for input binding, output variables for
// assembly, and the source graph's fingerprint as the artifact's identity.
// An IR is immutable after Lower (or decode) and fully self-contained:
// Materialize rebuilds the closures, the lane plan, and the output
// permutation from it alone.
type IR struct {
	Name        string
	Expr        string
	OptLevel    int
	Fingerprint string

	NSlot  int
	Steps  []StepIR
	CrdWr  []WriterIR // sorted by Level, one writer per output level
	ValsWr WriterIR

	Bindings     []graph.Binding
	OutputTensor string
	OutputDims   []graph.DimRef
	OutputVars   []string
	LHSVars      []string
}

// Structural bounds enforced by IR.Validate. They exist so a hostile or
// corrupt decoded artifact cannot make Materialize allocate unboundedly or
// index outside the stream table; real lowered graphs sit far below all of
// them.
const (
	maxIRSlots = 1 << 20
	maxIRWays  = 1 << 12
	maxIRRedN  = 64
)

// Lower flattens a graph into its IR: slot assignment (one stream buffer
// per driven output port, discarded ports get slot -1), one StepIR per
// block in deterministic topological order, and the writer table. The same
// graph always lowers to the same IR, which is what makes the encoded
// artifact form byte-stable.
func Lower(g *graph.Graph) (*IR, error) {
	if err := Check(g); err != nil {
		return nil, err
	}
	order, err := topoOrder(g)
	if err != nil {
		return nil, err
	}
	ir := &IR{
		Name: g.Name, Expr: g.Expr, OptLevel: g.OptLevel,
		Fingerprint:  g.Fingerprint(),
		Bindings:     g.Bindings,
		OutputTensor: g.OutputTensor,
		OutputDims:   g.OutputDims,
		OutputVars:   g.OutputVars,
		LHSVars:      g.LHSVars,
	}

	// One stream buffer per driven output port; fan-out consumers read the
	// same buffer. Undriven diagnostic ports write to slot -1 (discarded).
	outSlot := map[portKey]int{}
	inSlot := map[portKey]int{}
	for _, e := range g.Edges {
		k := portKey{e.From, e.FromPort}
		s, ok := outSlot[k]
		if !ok {
			s = ir.NSlot
			ir.NSlot++
			outSlot[k] = s
		}
		inSlot[portKey{e.To, e.ToPort}] = s
	}

	crdWr := map[int]WriterIR{}
	valsSeen := false
	for _, n := range order {
		if n.Kind == graph.CrdWriter || n.Kind == graph.ValsWriter {
			port := "crd"
			if n.Kind == graph.ValsWriter {
				port = "val"
			}
			slot, ok := inSlot[portKey{n.ID, port}]
			if !ok {
				return nil, fmt.Errorf("comp: node %q input port %q unconnected", n.Label, port)
			}
			if n.Kind == graph.ValsWriter {
				ir.ValsWr = WriterIR{Slot: slot, Label: n.Label}
				valsSeen = true
			} else {
				crdWr[n.OutLevel] = WriterIR{Level: n.OutLevel, Slot: slot, Label: n.Label}
			}
			continue
		}
		si := StepIR{
			Kind: n.Kind, Label: n.Label,
			Tensor: n.Tensor, TensorB: n.TensorB,
			Level: n.Level, LevelB: n.LevelB,
			Ways: n.Ways, Op: n.Op, RedN: n.RedN, DropVal: n.DropVal,
		}
		for _, port := range graph.InPorts(n) {
			s, ok := inSlot[portKey{n.ID, port}]
			if !ok {
				return nil, fmt.Errorf("comp: node %q input port %q unconnected", n.Label, port)
			}
			si.Ins = append(si.Ins, s)
		}
		for _, port := range graph.OutPorts(n) {
			s := -1
			if t, ok := outSlot[portKey{n.ID, port}]; ok {
				s = t
			}
			si.Outs = append(si.Outs, s)
		}
		ir.Steps = append(ir.Steps, si)
	}
	if !valsSeen {
		return nil, fmt.Errorf("comp: graph %q has no value writer", g.Name)
	}
	levels := make([]int, 0, len(crdWr))
	for lvl := range crdWr {
		levels = append(levels, lvl)
	}
	sort.Ints(levels)
	for _, lvl := range levels {
		ir.CrdWr = append(ir.CrdWr, crdWr[lvl])
	}
	return ir, nil
}

// Validate checks an IR's structural soundness so that Materialize and the
// interpreter can trust it: every step kind is lowerable, every slot index
// is inside the stream table, every Ins/Outs layout matches the kind's
// canonical port list, and the arity parameters sit within sane bounds.
// Lower always produces a valid IR; this guards IRs decoded from bytes.
func (ir *IR) Validate() error {
	if ir.NSlot < 0 || ir.NSlot > maxIRSlots {
		return fmt.Errorf("comp: ir: slot count %d outside [0, %d]", ir.NSlot, maxIRSlots)
	}
	for i := range ir.Steps {
		si := &ir.Steps[i]
		if err := si.validate(ir.NSlot); err != nil {
			return fmt.Errorf("comp: ir: step %d (%s): %w", i, si.Label, err)
		}
	}
	if ir.ValsWr.Slot < 0 || ir.ValsWr.Slot >= ir.NSlot {
		return fmt.Errorf("comp: ir: value writer slot %d outside stream table of %d", ir.ValsWr.Slot, ir.NSlot)
	}
	prev := -1
	for _, w := range ir.CrdWr {
		if w.Level < 0 || w.Level <= prev {
			return fmt.Errorf("comp: ir: coordinate writer levels must be distinct and ascending, got %d after %d", w.Level, prev)
		}
		prev = w.Level
		if w.Slot < 0 || w.Slot >= ir.NSlot {
			return fmt.Errorf("comp: ir: coordinate writer %q slot %d outside stream table of %d", w.Label, w.Slot, ir.NSlot)
		}
	}
	return ir.validateMetadata()
}

// validateMetadata checks the graph metadata carried alongside the step
// list — output variables, dimension references, and operand bindings — so
// that Materialize's permutation precompute and bind's run-time lookups can
// index by them without bounds checks of their own.
func (ir *IR) validateMetadata() error {
	// LHSVars is the output variable set in declaration order and OutputVars
	// the same set in loop order; Materialize sizes the permutation by one
	// and indexes it by the other, so the lengths must agree and the
	// variables must be distinct.
	if len(ir.LHSVars) != len(ir.OutputVars) {
		return fmt.Errorf("comp: ir: %d left-hand-side variables for %d output variables", len(ir.LHSVars), len(ir.OutputVars))
	}
	for _, vars := range [][]string{ir.OutputVars, ir.LHSVars} {
		seen := make(map[string]bool, len(vars))
		for _, v := range vars {
			if seen[v] {
				return fmt.Errorf("comp: ir: duplicate output variable %q", v)
			}
			seen[v] = true
		}
	}
	for _, d := range ir.OutputDims {
		if d.Mode < 0 {
			return fmt.Errorf("comp: ir: output dimension references negative mode %d of tensor %q", d.Mode, d.Tensor)
		}
	}
	for i := range ir.Bindings {
		b := &ir.Bindings[i]
		if len(b.Formats) != len(b.ModeOrder) {
			return fmt.Errorf("comp: ir: binding %q has %d formats for %d modes", b.Operand, len(b.Formats), len(b.ModeOrder))
		}
		for _, m := range b.ModeOrder {
			if m < 0 || m >= len(b.ModeOrder) {
				return fmt.Errorf("comp: ir: binding %q mode order entry %d outside [0, %d)", b.Operand, m, len(b.ModeOrder))
			}
		}
	}
	return nil
}

// validate checks one step's kind, parameters and slot layout.
func (si *StepIR) validate(nSlot int) error {
	switch si.Kind {
	case graph.Root, graph.Scanner, graph.Repeat, graph.Intersect, graph.Union,
		graph.GallopIntersect, graph.Locate, graph.Array, graph.ALU, graph.Reduce,
		graph.CrdDrop, graph.Parallelize, graph.Serialize, graph.SerializePair,
		graph.LaneReduce:
	default:
		return fmt.Errorf("block kind %v not lowerable", si.Kind)
	}
	if si.Ways < 0 || si.Ways > maxIRWays {
		return fmt.Errorf("ways %d outside [0, %d]", si.Ways, maxIRWays)
	}
	if si.RedN < 0 || si.RedN > maxIRRedN {
		return fmt.Errorf("reducer dimension %d outside [0, %d]", si.RedN, maxIRRedN)
	}
	switch si.Kind {
	case graph.Intersect, graph.Union, graph.Parallelize, graph.Serialize, graph.SerializePair:
		if si.Ways < 1 {
			return fmt.Errorf("%v needs at least one way", si.Kind)
		}
	case graph.LaneReduce:
		if si.Ways != 2 {
			return fmt.Errorf("lane reducer wants 2 ways, got %d", si.Ways)
		}
	case graph.Scanner, graph.Locate:
		if si.Level < 0 {
			return fmt.Errorf("%v level %d negative", si.Kind, si.Level)
		}
	case graph.GallopIntersect:
		if si.Level < 0 || si.LevelB < 0 {
			return fmt.Errorf("gallop levels %d/%d negative", si.Level, si.LevelB)
		}
	}
	n := si.node()
	if want := len(graph.InPorts(n)); len(si.Ins) != want {
		return fmt.Errorf("%v has %d input slots, want %d", si.Kind, len(si.Ins), want)
	}
	if want := len(graph.OutPorts(n)); len(si.Outs) != want {
		return fmt.Errorf("%v has %d output slots, want %d", si.Kind, len(si.Outs), want)
	}
	for _, s := range si.Ins {
		if s < 0 || s >= nSlot {
			return fmt.Errorf("input slot %d outside stream table of %d", s, nSlot)
		}
	}
	for _, s := range si.Outs {
		if s < -1 || s >= nSlot {
			return fmt.Errorf("output slot %d outside stream table of %d", s, nSlot)
		}
	}
	return nil
}

// Materialize turns an IR back into an executable Program: it validates the
// IR, binds one closure per step through the opcode dispatch in stepFor,
// and recomputes everything derived — the lane-parallel execution plan and
// the output permutation — from the IR records. Derived state is never
// serialized, so a corrupt artifact cannot smuggle in an unsound plan; it
// can only fail validation here or a protocol check at run time.
func Materialize(ir *IR) (*Program, error) {
	if err := ir.Validate(); err != nil {
		return nil, err
	}
	p := &Program{ir: ir, nSlot: ir.NSlot, crdWr: map[int]writerRec{}}
	for _, w := range ir.CrdWr {
		p.crdWr[w.Level] = writerRec{label: w.Label, slot: w.Slot}
	}
	p.valsWr = &writerRec{label: ir.ValsWr.Label, slot: ir.ValsWr.Slot}
	infos := make([]stepInfo, len(ir.Steps))
	for i := range ir.Steps {
		si := &ir.Steps[i]
		st, err := stepFor(si)
		if err != nil {
			return nil, err
		}
		p.steps = append(p.steps, st)
		infos[i] = stepInfo{si: si, step: st}
	}
	p.hints = make([]atomic.Int64, p.nSlot)
	p.plan = buildPlan(p.nSlot, infos, p.crdWr, p.valsWr)

	// Precompute the output permutation once; a missing variable surfaces
	// at assembly time, after stream validation, like the other engines.
	nOut := len(ir.OutputVars)
	p.perm = make([]int, nOut)
	p.idPerm = true
	for i, v := range ir.LHSVars {
		found := false
		for j, u := range ir.OutputVars {
			if u == v {
				p.perm[i] = j
				found = true
			}
		}
		if !found {
			p.permErr = fmt.Errorf("comp: output variable %q missing from graph metadata", v)
			break
		}
		if p.perm[i] != i {
			p.idPerm = false
		}
	}
	return p, nil
}

// stepFor is the opcode dispatch of the artifact interpreter: it binds one
// StepIR to its closure. Binding happens once at materialize time (direct
// threading — the run loop is a flat walk over already-bound closures), and
// the closure bodies are the same ones a direct compilation produces.
func stepFor(si *StepIR) (step, error) {
	switch si.Kind {
	case graph.Root:
		return stepRoot(si), nil
	case graph.Scanner:
		return stepScanner(si), nil
	case graph.Repeat:
		return stepRepeat(si), nil
	case graph.Intersect:
		return stepIntersect(si), nil
	case graph.Union:
		return stepUnion(si), nil
	case graph.GallopIntersect:
		return stepGallop(si), nil
	case graph.Locate:
		return stepLocate(si), nil
	case graph.Array:
		return stepArray(si), nil
	case graph.ALU:
		return stepALU(si), nil
	case graph.Reduce:
		return stepReduce(si), nil
	case graph.CrdDrop:
		return stepCrdDrop(si), nil
	case graph.Parallelize:
		return stepParallelize(si), nil
	case graph.Serialize:
		return stepSerialize(si), nil
	case graph.SerializePair:
		return stepSerializePair(si), nil
	case graph.LaneReduce:
		return stepLaneReduce(si), nil
	}
	return nil, fmt.Errorf("comp: block kind %v not lowerable", si.Kind)
}

// splitPairs splits an interleaved crd/ref input layout (crd0,ref0,crd1,…)
// into its two slot families.
func splitPairs(ins []int, w int) (crd, ref []int) {
	crd, ref = make([]int, w), make([]int, w)
	for i := 0; i < w; i++ {
		crd[i], ref[i] = ins[2*i], ins[2*i+1]
	}
	return crd, ref
}
