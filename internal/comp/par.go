package comp

import (
	"sam/internal/core"
	"sam/internal/token"
)

// This file lowers the lane-parallelism blocks of paper Section 4.4: the
// parallelizer fork, the round-robin (and driver-rotated) joiners, and the
// cross-lane reduction combiner. The merged-loop state machines mirror
// internal/flow's goroutine implementations token for token; the combiner
// reuses the shared pure codec core.MergeLaneStreams directly, since the
// lane streams are already materialized here.

// stepParallelize forks a stream across lanes: level < 0 advances the lane
// after every data token, level >= 0 after each stop of exactly that level;
// higher stops and done replicate to every lane.
func stepParallelize(si *StepIR) step {
	in := si.Ins[0]
	outs := si.Outs
	level := si.Level
	return func(x *exec) {
		cin := x.cur(in)
		lanes := len(outs)
		lane := 0
		for {
			t := cin.next()
			switch t.Kind {
			case token.Val, token.Empty:
				x.push(outs[lane], t)
				if level < 0 {
					lane = (lane + 1) % lanes
				}
			case token.Stop:
				switch {
				case level >= 0 && t.StopLevel() < level:
					x.push(outs[lane], t)
				case level >= 0 && t.StopLevel() == level:
					x.push(outs[lane], t)
					lane = (lane + 1) % lanes
				default:
					for _, o := range outs {
						x.push(o, t)
					}
					lane = 0
				}
			case token.Done:
				for _, o := range outs {
					x.push(o, t)
				}
				return
			}
		}
	}
}

// allClosed reports whether every lane cursor's head is a stop above the
// switch level (level >= 0) or any stop (level < 0).
func allClosed(cs []*cursor, level int) bool {
	for _, cc := range cs {
		t := cc.peek()
		if !t.IsStop() || (level >= 0 && t.StopLevel() <= level) {
			return false
		}
	}
	return true
}

// stepSerialize joins lane streams round-robin; deep joins (Level >= 0) are
// rotated by per-lane copies of the forked outermost coordinate stream.
func stepSerialize(si *StepIR) step {
	w := si.Ways
	ins := si.Ins[:w]
	out := si.Outs[0]
	level, name := si.Level, si.Label
	if level < 0 {
		return func(x *exec) {
			h := x.curs(ins)
			lanes := len(h)
			lane := 0
			for {
				t := h[lane].peek()
				switch t.Kind {
				case token.Val, token.Empty:
					x.push(out, h[lane].next())
					lane = (lane + 1) % lanes
				case token.Stop:
					if !allClosed(h, level) {
						fail("%s: lanes misaligned at stop %v", name, t)
					}
					lvl := t.StopLevel()
					for l := range h {
						if xt := h[l].next(); !xt.IsStop() || xt.StopLevel() != lvl {
							fail("%s: lanes disagree on closing stop: %v vs %v", name, t, xt)
						}
					}
					x.push(out, t)
					lane = 0
				case token.Done:
					for l := range h {
						if xt := h[l].next(); !xt.IsDone() {
							fail("%s: lanes misaligned at done: %v", name, xt)
						}
					}
					x.push(out, token.D())
					return
				}
			}
		}
	}
	drv := si.Ins[w : 2*w]
	return func(x *exec) {
		h := x.curs(ins)
		hd := x.curs(drv)
		lanes := len(h)
		noMore := func() bool {
			for l := range hd {
				if t := hd[l].peek(); t.IsVal() || t.IsEmpty() {
					return false
				}
			}
			return true
		}
		lane := 0
		for {
			d := hd[lane].peek()
			switch {
			case d.IsVal() || d.IsEmpty():
				hd[lane].next()
			chunk:
				for {
					t := h[lane].peek()
					switch {
					case t.IsVal() || t.IsEmpty():
						x.push(out, h[lane].next())
					case t.IsStop() && t.StopLevel() < level:
						x.push(out, h[lane].next())
					case t.IsStop() && t.StopLevel() == level:
						x.push(out, h[lane].next())
						break chunk
					case t.IsStop():
						if !noMore() {
							x.push(out, token.S(level))
						}
						break chunk
					default:
						fail("%s: lane stream ended mid-chunk", name)
					}
				}
				lane = (lane + 1) % lanes
			case d.IsStop():
				if !noMore() {
					lane = (lane + 1) % lanes
					continue
				}
				for l := range hd {
					if xt := hd[l].next(); !xt.IsStop() || xt.StopLevel() != d.StopLevel() {
						fail("%s: drivers disagree on closing stop: %v vs %v", name, d, xt)
					}
				}
				lvl := -1
				for l := range h {
					xt := h[l].next()
					if !xt.IsStop() || xt.StopLevel() <= level || (lvl >= 0 && xt.StopLevel() != lvl) {
						fail("%s: expected closing stop, lane holds %v", name, xt)
					}
					lvl = xt.StopLevel()
				}
				x.push(out, token.S(lvl))
				for l := range hd {
					if xt := hd[l].next(); !xt.IsDone() {
						fail("%s: driver misaligned at done: %v", name, xt)
					}
					if xt := h[l].next(); !xt.IsDone() {
						fail("%s: lanes misaligned at done: %v", name, xt)
					}
				}
				x.push(out, token.D())
				return
			default:
				fail("%s: driver stream ended before its closing stop", name)
			}
		}
	}
}

// stepSerializePair joins (coordinate, value) lane stream pairs keyed on
// the coordinate streams, forwarding orphan zero values on the value output.
func stepSerializePair(si *StepIR) step {
	w := si.Ways
	inCrd := si.Ins[:w]
	inVal := si.Ins[w : 2*w]
	outCrd, outVal := si.Outs[0], si.Outs[1]
	level, name := si.Level, si.Label
	if level < 0 {
		return func(x *exec) {
			hc := x.curs(inCrd)
			hv := x.curs(inVal)
			lanes := len(hc)
			lane := 0
			drainOrphans := func() {
				for l := range hc {
					ct := hc[l].peek()
					if !ct.IsStop() && !ct.IsDone() {
						continue
					}
					for {
						v := hv[l].peek()
						if !v.IsVal() && !v.IsEmpty() {
							break
						}
						if v.IsVal() && v.V != 0 {
							fail("%s: nonzero orphan value %v in lane %d", name, v, l)
						}
						x.push(outVal, hv[l].next())
					}
				}
			}
			for {
				tc := hc[lane].peek()
				switch tc.Kind {
				case token.Val, token.Empty:
					tv := hv[lane].peek()
					if !tv.IsVal() && !tv.IsEmpty() {
						fail("%s: value stream misaligned: crd %v vs val %v", name, tc, tv)
					}
					x.push(outCrd, hc[lane].next())
					x.push(outVal, hv[lane].next())
					lane = (lane + 1) % lanes
				case token.Stop:
					lvl := tc.StopLevel()
					if !allClosed(hc, level) {
						fail("%s: lanes misaligned at stop %v", name, tc)
					}
					drainOrphans()
					for l := range hc {
						if xt := hc[l].next(); xt.StopLevel() != lvl {
							fail("%s: lanes disagree on closing stop: %v vs %v", name, tc, xt)
						}
						if xt := hv[l].next(); !xt.IsStop() || xt.StopLevel() != lvl {
							fail("%s: value stream misaligned at closing stop: %v", name, xt)
						}
					}
					x.push(outCrd, tc)
					x.push(outVal, tc)
					lane = 0
				case token.Done:
					for l := range hc {
						if xt := hc[l].peek(); !xt.IsDone() {
							fail("%s: lanes misaligned at done: %v", name, xt)
						}
					}
					drainOrphans()
					for l := range hc {
						hc[l].next()
						if xt := hv[l].next(); !xt.IsDone() {
							fail("%s: value stream misaligned at done: %v", name, xt)
						}
					}
					x.push(outCrd, token.D())
					x.push(outVal, token.D())
					return
				}
			}
		}
	}
	drv := si.Ins[2*w : 3*w]
	return func(x *exec) {
		hc := x.curs(inCrd)
		hv := x.curs(inVal)
		hd := x.curs(drv)
		lanes := len(hc)
		noMore := func() bool {
			for l := range hd {
				if t := hd[l].peek(); t.IsVal() || t.IsEmpty() {
					return false
				}
			}
			return true
		}
		// drainOrphans forwards the zero values a lane holds while its
		// coordinate head is a stop or done.
		drainOrphans := func(l int) {
			for {
				v := hv[l].peek()
				if !v.IsVal() && !v.IsEmpty() {
					return
				}
				if v.IsVal() && v.V != 0 {
					fail("%s: nonzero orphan value %v in lane %d", name, v, l)
				}
				x.push(outVal, hv[l].next())
			}
		}
		lane := 0
		for {
			d := hd[lane].peek()
			switch {
			case d.IsVal() || d.IsEmpty():
				hd[lane].next()
			chunk:
				for {
					tc := hc[lane].peek()
					switch {
					case tc.IsVal() || tc.IsEmpty():
						tv := hv[lane].peek()
						if !tv.IsVal() && !tv.IsEmpty() {
							fail("%s: value stream misaligned: crd %v vs val %v", name, tc, tv)
						}
						x.push(outCrd, hc[lane].next())
						x.push(outVal, hv[lane].next())
					case tc.IsStop() && tc.StopLevel() <= level:
						drainOrphans(lane)
						if tv := hv[lane].next(); !tv.IsStop() || tv.StopLevel() != tc.StopLevel() {
							fail("%s: misaligned stops %v vs %v", name, tc, tv)
						}
						x.push(outCrd, hc[lane].next())
						x.push(outVal, tc)
						if tc.StopLevel() == level {
							break chunk
						}
					case tc.IsStop():
						drainOrphans(lane)
						if !noMore() {
							x.push(outCrd, token.S(level))
							x.push(outVal, token.S(level))
						}
						break chunk
					default:
						fail("%s: lane stream ended mid-chunk", name)
					}
				}
				lane = (lane + 1) % lanes
			case d.IsStop():
				if !noMore() {
					lane = (lane + 1) % lanes
					continue
				}
				for l := range hd {
					if xt := hd[l].next(); !xt.IsStop() || xt.StopLevel() != d.StopLevel() {
						fail("%s: drivers disagree on closing stop: %v vs %v", name, d, xt)
					}
				}
				lvl := -1
				for l := range hc {
					drainOrphans(l)
					xt := hc[l].next()
					if !xt.IsStop() || xt.StopLevel() <= level || (lvl >= 0 && xt.StopLevel() != lvl) {
						fail("%s: expected closing stop, lane holds %v", name, xt)
					}
					lvl = xt.StopLevel()
					if v := hv[l].next(); !v.IsStop() || v.StopLevel() != xt.StopLevel() {
						fail("%s: value stream misaligned at closing stop: %v", name, v)
					}
				}
				x.push(outCrd, token.S(lvl))
				x.push(outVal, token.S(lvl))
				for l := range hc {
					if xt := hd[l].next(); !xt.IsDone() {
						fail("%s: driver misaligned at done: %v", name, xt)
					}
					if xt := hc[l].next(); !xt.IsDone() {
						fail("%s: lanes misaligned at done: %v", name, xt)
					}
					if xt := hv[l].next(); !xt.IsDone() {
						fail("%s: value stream misaligned at done: %v", name, xt)
					}
				}
				x.push(outCrd, token.D())
				x.push(outVal, token.D())
				return
			default:
				fail("%s: driver stream ended before its closing stop", name)
			}
		}
	}
}

// stepLaneReduce merges two lanes' output stream bundles (m coordinate
// streams plus values per lane) by adding values at matching coordinate
// points, via the shared pure codec. Input slots follow LaneReduce port
// order: side 0's m coordinate streams then its values, then side 1's.
func stepLaneReduce(si *StepIR) step {
	m := si.RedN
	crdA, valA := si.Ins[:m], si.Ins[m]
	crdB, valB := si.Ins[m+1:2*m+1], si.Ins[2*m+1]
	outCrd := si.Outs[:m]
	outVal := si.Outs[m]
	name := si.Label
	return func(x *exec) {
		collect := func(slots []int) []token.Stream {
			out := make([]token.Stream, len(slots))
			for i, s := range slots {
				out[i] = x.streams[s]
			}
			return out
		}
		merged, err := core.MergeLaneStreams(m, collect(crdA), x.streams[valA], collect(crdB), x.streams[valB])
		if err != nil {
			fail("%s: %v", name, err)
		}
		for q := 0; q < m; q++ {
			for _, t := range merged[q] {
				x.push(outCrd[q], t)
			}
		}
		for _, t := range merged[m] {
			x.push(outVal, t)
		}
	}
}
