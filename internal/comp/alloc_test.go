package comp_test

import (
	"math/rand"
	"testing"

	"sam/internal/bind"
	"sam/internal/comp"
	"sam/internal/custard"
	"sam/internal/fiber"
	"sam/internal/lang"
	"sam/internal/tensor"
)

// compileCase lowers one (expr, schedule) configuration to a compiled
// program with its operand binding, from deterministic integer inputs.
func compileCase(t testing.TB, expr string, sched lang.Schedule, seed int64) (*comp.Program, map[string]*fiber.Tensor, []int) {
	t.Helper()
	e, err := lang.Parse(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	g, err := custard.Compile(e, nil, sched)
	if err != nil {
		t.Fatalf("custard %q: %v", expr, err)
	}
	cp, err := comp.Compile(g)
	if err != nil {
		t.Fatalf("comp %q: %v", expr, err)
	}
	dims := map[string]int{"i": 48, "j": 40, "k": 24, "l": 12}
	rng := rand.New(rand.NewSource(seed))
	inputs := randomInputs(rng, e, func(v string) int { return dims[v] })
	bound, err := bind.Operands(g, inputs)
	if err != nil {
		t.Fatalf("bind %q: %v", expr, err)
	}
	odims, err := bind.OutputDims(g, inputs)
	if err != nil {
		t.Fatalf("output dims %q: %v", expr, err)
	}
	return cp, bound, odims
}

// TestWarmRunPooledZeroAllocs is the alloc gate of the serve hot path: once
// a run context is warm (buffers grown to the program's high-water marks),
// RunPooled must not touch the heap at all. CI fails this test on any
// regression, so every lowered closure stays on arena scratch.
func TestWarmRunPooledZeroAllocs(t *testing.T) {
	cases := []struct {
		name  string
		expr  string
		sched lang.Schedule
	}{
		{"spmv", "x(i) = B(i,j) * c(j)", lang.Schedule{}},
		{"spmv-opt", "x(i) = B(i,j) * c(j)", lang.Schedule{Opt: 1}},
		{"spmspm-ikj", "X(i,j) = B(i,k) * C(k,j)", lang.Schedule{LoopOrder: []string{"i", "k", "j"}}},
		{"spmspm-ijk", "X(i,j) = B(i,k) * C(k,j)", lang.Schedule{LoopOrder: []string{"i", "j", "k"}}},
		{"spmspm-kij", "X(i,j) = B(i,k) * C(k,j)", lang.Schedule{LoopOrder: []string{"k", "i", "j"}}},
		{"sddmm", "X(i,j) = B(i,j) * C(i,k) * D(j,k)", lang.Schedule{}},
		{"innerprod", "x = B(i,j) * C(i,j)", lang.Schedule{}},
		{"mmadd", "X(i,j) = B(i,j) + C(i,j)", lang.Schedule{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp, bound, dims := compileCase(t, tc.expr, tc.sched, 11)
			rc := cp.NewCtx()
			for i := 0; i < 3; i++ { // grow buffers to steady state
				if _, err := cp.RunPooled(rc, bound, dims); err != nil {
					t.Fatalf("warmup run: %v", err)
				}
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := cp.RunPooled(rc, bound, dims); err != nil {
					t.Fatalf("run: %v", err)
				}
			})
			if allocs != 0 {
				t.Errorf("warm RunPooled allocated %.1f objects/run, want 0", allocs)
			}
		})
	}
}

// BenchmarkWarmRun reports the warm-path cost of both entry points: the
// borrowed-output RunPooled (the zero-alloc hot path) and Run, which adds
// one output clone per call.
func BenchmarkWarmRun(b *testing.B) {
	for _, bc := range []struct {
		name string
		expr string
	}{
		{"SpMV", "x(i) = B(i,j) * c(j)"},
		{"SpMSpM", "X(i,j) = B(i,k) * C(k,j)"},
	} {
		cp, bound, dims := compileCase(b, bc.expr, lang.Schedule{}, 11)
		b.Run(bc.name+"/pooled", func(b *testing.B) {
			rc := cp.NewCtx()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cp.RunPooled(rc, bound, dims); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(bc.name+"/cloned", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cp.Run(bound, dims); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestLanePlanActivates pins the lane planner's coverage: the headline
// parallel kernels must actually compile to goroutine plans at Par > 1 (and
// must not at Par = 1), so the differential battery's goroutine-vs-merged
// comparison is exercising real fork/join execution, not a silent
// sequential fallback.
func TestLanePlanActivates(t *testing.T) {
	cases := []struct {
		expr  string
		order []string
	}{
		{"x(i) = B(i,j) * c(j)", nil},
		{"X(i,j) = B(i,k) * C(k,j)", []string{"i", "k", "j"}},
		{"X(i,j) = B(i,k) * C(k,j)", []string{"i", "j", "k"}},
	}
	for _, tc := range cases {
		for _, par := range []int{1, 4} {
			sched := lang.Schedule{LoopOrder: tc.order, Par: par}
			cp, bound, dims := compileCase(t, tc.expr, sched, 3)
			if got, want := cp.Parallel(), par > 1; got != want {
				t.Errorf("%s par%d: Parallel() = %v, want %v", tc.expr, par, got, want)
			}
			if _, err := cp.Run(bound, dims); err != nil {
				t.Errorf("%s par%d: run: %v", tc.expr, par, err)
			}
		}
	}
}

// TestRunPooledReuseIsolation is the pool-reuse correctness test: outputs
// cloned from earlier runs stay intact after the context is reused, and a
// context that just ran one operand set produces the same bits for another
// operand set as a fresh context — run A's buffers never leak into run B's
// output.
func TestRunPooledReuseIsolation(t *testing.T) {
	expr := "X(i,j) = B(i,k) * C(k,j)"
	sched := lang.Schedule{LoopOrder: []string{"i", "k", "j"}}
	cpA, boundA, dimsA := compileCase(t, expr, sched, 5)
	_, boundB, dimsB := compileCase(t, expr, sched, 17)

	rc := cpA.NewCtx()
	outA, err := cpA.RunPooled(rc, boundA, dimsA)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	keepA := cloneForTest(outA)
	outB, err := cpA.RunPooled(rc, boundB, dimsB) // reuses A's buffers
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	keepB := cloneForTest(outB)

	freshA, err := cpA.Run(boundA, dimsA)
	if err != nil {
		t.Fatalf("fresh run A: %v", err)
	}
	freshB, err := cpA.Run(boundB, dimsB)
	if err != nil {
		t.Fatalf("fresh run B: %v", err)
	}
	if err := tensor.IdenticalBits(freshA, keepA); err != nil {
		t.Errorf("run A output corrupted by reuse: %v", err)
	}
	if err := tensor.IdenticalBits(freshB, keepB); err != nil {
		t.Errorf("reused context produced different bits for run B: %v", err)
	}

	// Re-running A on the same context must also reproduce A exactly.
	outA2, err := cpA.RunPooled(rc, boundA, dimsA)
	if err != nil {
		t.Fatalf("run A again: %v", err)
	}
	if err := tensor.IdenticalBits(freshA, outA2); err != nil {
		t.Errorf("warm re-run of A differs: %v", err)
	}
}

// cloneForTest deep-copies a context-borrowed output so it can be compared
// after the context is reused.
func cloneForTest(src *tensor.COO) *tensor.COO {
	out := tensor.NewCOO(src.Name, src.Dims...)
	for _, p := range src.Pts {
		out.Pts = append(out.Pts, tensor.Point{Crd: append([]int64(nil), p.Crd...), Val: p.Val})
	}
	return out
}
