package comp

import (
	"sam/internal/lang"
	"sam/internal/token"
)

// The step constructors bind one lowered StepIR to its closure. The closures
// mirror the token-level semantics of internal/core and internal/flow
// exactly; only the execution strategy differs — whole streams per call
// instead of tokens per cycle. Slot layouts follow the canonical port order
// of graph.InPorts/graph.OutPorts, which IR.Validate has already checked, so
// the headers read positions without re-validating.

// stepRoot emits the single root reference.
func stepRoot(si *StepIR) step {
	out := si.Outs[0]
	return func(x *exec) {
		x.push(out, token.C(0))
		x.push(out, token.D())
	}
}

// stepScanner walks one storage level fiber by fiber: each reference token
// selects a fiber, whose coordinates and child references stream out in one
// cursor walk; stop tokens rise one level.
func stepScanner(si *StepIR) step {
	in := si.Ins[0]
	outCrd, outRef := si.Outs[0], si.Outs[1]
	operand, level, label := si.Tensor, si.Level, si.Label
	return func(x *exec) {
		lvl := x.level(label, operand, level)
		ref := x.cur(in)
		sep := false
		for {
			t := ref.next()
			switch t.Kind {
			case token.Val, token.Empty:
				if sep {
					x.push(outCrd, token.S(0))
					x.push(outRef, token.S(0))
				}
				if t.IsVal() {
					f := int(t.N)
					m := lvl.FiberLen(f)
					for i := 0; i < m; i++ {
						x.push(outCrd, token.C(lvl.Coord(f, i)))
						x.push(outRef, token.C(lvl.ChildRef(f, i)))
					}
				}
				sep = true
			case token.Stop:
				sep = false
				x.push(outCrd, token.S(t.StopLevel()+1))
				x.push(outRef, token.S(t.StopLevel()+1))
			case token.Done:
				if sep {
					x.push(outCrd, token.S(0))
					x.push(outRef, token.S(0))
				}
				x.push(outCrd, token.D())
				x.push(outRef, token.D())
				return
			}
		}
	}
}

// stepRepeat broadcasts each reference over its coordinate group
// (Definition 3.4).
func stepRepeat(si *StepIR) step {
	inCrd, inRef := si.Ins[0], si.Ins[1]
	out := si.Outs[0]
	name := si.Label
	return func(x *exec) {
		crd, ref := x.cur(inCrd), x.cur(inRef)
		var curTok token.Tok
		have := false
		for {
			t := crd.next()
			switch t.Kind {
			case token.Val:
				if !have {
					curTok = ref.next()
					if !curTok.IsVal() && !curTok.IsEmpty() {
						fail("%s: expected reference, got %v", name, curTok)
					}
					have = true
				}
				x.push(out, curTok)
			case token.Stop:
				m := t.StopLevel()
				if !have {
					// Either an empty fiber's reference or (for m >= 1) a
					// structural stop; reading decides.
					rt := ref.next()
					switch {
					case rt.IsVal() || rt.IsEmpty():
						if m >= 1 {
							rs := ref.next()
							if !rs.IsStop() || rs.StopLevel() != m-1 {
								fail("%s: misaligned ref stop %v for crd %v", name, rs, t)
							}
						}
					case rt.IsStop() && m >= 1 && rt.StopLevel() == m-1:
						// structural empty group; stop consumed
					default:
						fail("%s: misaligned ref token %v for crd stop %v", name, rt, t)
					}
				} else if m >= 1 {
					rs := ref.next()
					if !rs.IsStop() || rs.StopLevel() != m-1 {
						fail("%s: misaligned ref stop %v for crd %v", name, rs, t)
					}
				}
				have = false
				x.push(out, t)
			case token.Done:
				if d := ref.next(); !d.IsDone() {
					fail("%s: ref stream not done: %v", name, d)
				}
				x.push(out, token.D())
				return
			}
		}
	}
}

// stepIntersect is the m-ary intersecter as one two-pointer merge loop over
// the input coordinate streams (Definition 3.2).
func stepIntersect(si *StepIR) step {
	inCrd, inRef := splitPairs(si.Ins, si.Ways)
	outCrd := si.Outs[0]
	outRef := si.Outs[1 : 1+si.Ways]
	name := si.Label
	return func(x *exec) {
		m := len(inCrd)
		cc, cr := x.curs(inCrd), x.curs(inRef)
		heads := x.a.tokens(m)
		for i := range heads {
			heads[i] = cc[i].next()
		}
		for {
			// Two-way fast path: while both heads are coordinates, run the
			// plain two-pointer merge without the generic head scan. The
			// emitted tokens are exactly the generic state machine's
			// nVal == m cases specialized to m == 2.
			if m == 2 {
				a, b := heads[0], heads[1]
				for a.Kind == token.Val && b.Kind == token.Val {
					switch {
					case a.N == b.N:
						x.push(outCrd, token.C(a.N))
						x.push(outRef[0], cr[0].next())
						x.push(outRef[1], cr[1].next())
						a = cc[0].next()
						b = cc[1].next()
					case a.N < b.N:
						cr[0].next()
						a = cc[0].next()
					default:
						cr[1].next()
						b = cc[1].next()
					}
				}
				heads[0], heads[1] = a, b
			}
			nVal, nDone := 0, 0
			var minC int64
			stopLvl := -1
			for _, t := range heads {
				switch t.Kind {
				case token.Val:
					if nVal == 0 || t.N < minC {
						minC = t.N
					}
					nVal++
				case token.Stop:
					if stopLvl != -1 && stopLvl != t.StopLevel() {
						fail("%s: misaligned stop levels S%d vs S%d", name, stopLvl, t.StopLevel())
					}
					stopLvl = t.StopLevel()
				case token.Done:
					nDone++
				}
			}
			switch {
			case nDone == m:
				x.push(outCrd, token.D())
				for i := range cr {
					cr[i].next()
					x.push(outRef[i], token.D())
				}
				return
			case nDone > 0:
				fail("%s: premature done", name)
			case nVal == m:
				all := true
				for _, t := range heads {
					if t.N != minC {
						all = false
					}
				}
				if all {
					x.push(outCrd, token.C(minC))
					for i := range heads {
						rt := cr[i].next()
						heads[i] = cc[i].next()
						x.push(outRef[i], rt)
					}
					continue
				}
				for i, t := range heads {
					if t.IsVal() && t.N == minC {
						cr[i].next() // refs move in lockstep
						heads[i] = cc[i].next()
					}
				}
			case nVal == 0:
				x.push(outCrd, token.S(stopLvl))
				for i := range heads {
					rt := cr[i].next()
					heads[i] = cc[i].next()
					if !rt.IsStop() {
						fail("%s: ref misaligned at stop: %v", name, rt)
					}
					x.push(outRef[i], rt)
				}
			default:
				for i, t := range heads {
					if t.IsVal() {
						cr[i].next() // refs move in lockstep
						heads[i] = cc[i].next()
					}
				}
			}
		}
	}
}

// stepUnion is the m-ary unioner as one merge loop (Definition 3.3).
func stepUnion(si *StepIR) step {
	inCrd, inRef := splitPairs(si.Ins, si.Ways)
	outCrd := si.Outs[0]
	outRef := si.Outs[1 : 1+si.Ways]
	name := si.Label
	return func(x *exec) {
		m := len(inCrd)
		cc, cr := x.curs(inCrd), x.curs(inRef)
		heads := x.a.tokens(m)
		for i := range heads {
			heads[i] = cc[i].next()
		}
		for {
			nVal, nDone := 0, 0
			var minC int64
			stopLvl := -1
			for _, t := range heads {
				switch t.Kind {
				case token.Val:
					if nVal == 0 || t.N < minC {
						minC = t.N
					}
					nVal++
				case token.Stop:
					if stopLvl != -1 && stopLvl != t.StopLevel() {
						fail("%s: misaligned stop levels S%d vs S%d", name, stopLvl, t.StopLevel())
					}
					stopLvl = t.StopLevel()
				case token.Done:
					nDone++
				}
			}
			switch {
			case nDone == m:
				x.push(outCrd, token.D())
				for i := range cr {
					cr[i].next()
					x.push(outRef[i], token.D())
				}
				return
			case nDone > 0:
				fail("%s: premature done", name)
			case nVal == 0:
				x.push(outCrd, token.S(stopLvl))
				for i := range heads {
					rt := cr[i].next()
					if !rt.IsStop() {
						fail("%s: ref misaligned at stop: %v", name, rt)
					}
					x.push(outRef[i], rt)
					heads[i] = cc[i].next()
				}
			default:
				x.push(outCrd, token.C(minC))
				for i, t := range heads {
					if t.IsVal() && t.N == minC {
						x.push(outRef[i], cr[i].next())
						heads[i] = cc[i].next()
					} else {
						x.push(outRef[i], token.N())
					}
				}
			}
		}
	}
}

// stepLocate is the iterate-locate block following a driver coordinate
// stream into one tensor level (Definition 4.1).
func stepLocate(si *StepIR) step {
	inCrd, inRef, inFib := si.Ins[0], si.Ins[1], si.Ins[2]
	outCrd, outRef, outLoc := si.Outs[0], si.Outs[1], si.Outs[2]
	operand, level, name := si.Tensor, si.Level, si.Label
	return func(x *exec) {
		lvl := x.level(name, operand, level)
		crd, ref, fib := x.cur(inCrd), x.cur(inRef), x.cur(inFib)
		var curTok token.Tok
		have := false
		for {
			t := crd.next()
			switch t.Kind {
			case token.Val:
				rt := ref.next()
				if !have {
					curTok = fib.next()
					if !curTok.IsVal() && !curTok.IsEmpty() {
						fail("%s: expected fiber-select reference, got %v", name, curTok)
					}
					have = true
				}
				if curTok.IsEmpty() {
					continue
				}
				loc, found := lvl.Locate(int(curTok.N), t.N)
				if !found {
					continue
				}
				x.push(outCrd, t)
				x.push(outRef, rt)
				x.push(outLoc, token.C(loc))
			case token.Stop:
				m := t.StopLevel()
				rs := ref.next()
				if !rs.IsStop() || rs.StopLevel() != m {
					fail("%s: ref misaligned at stop %v: %v", name, t, rs)
				}
				if !have {
					ft := fib.next()
					switch {
					case ft.IsVal() || ft.IsEmpty():
						if m >= 1 {
							fs := fib.next()
							if !fs.IsStop() || fs.StopLevel() != m-1 {
								fail("%s: fiber-select misaligned %v", name, fs)
							}
						}
					case ft.IsStop() && m >= 1 && ft.StopLevel() == m-1:
					default:
						fail("%s: fiber-select misaligned %v at stop %v", name, ft, t)
					}
				} else if m >= 1 {
					fs := fib.next()
					if !fs.IsStop() || fs.StopLevel() != m-1 {
						fail("%s: fiber-select misaligned %v", name, fs)
					}
				}
				have = false
				x.push(outCrd, t)
				x.push(outRef, t)
				x.push(outLoc, t)
			case token.Done:
				if d := ref.next(); !d.IsDone() {
					fail("%s: ref stream not done", name)
				}
				if d := fib.next(); !d.IsDone() {
					fail("%s: fiber-select stream not done", name)
				}
				x.push(outCrd, token.D())
				x.push(outRef, token.D())
				x.push(outLoc, token.D())
				return
			}
		}
	}
}

// stepArray is the array block in load mode: references gather values in
// one pass over the reference stream (Definition 3.5).
func stepArray(si *StepIR) step {
	in := si.Ins[0]
	out := si.Outs[0]
	operand, name := si.Tensor, si.Label
	return func(x *exec) {
		vals := x.vals(name, operand)
		ref := x.cur(in)
		for {
			t := ref.next()
			switch t.Kind {
			case token.Val:
				if t.N < 0 || t.N >= int64(len(vals)) {
					fail("%s: reference %d out of range", name, t.N)
				}
				x.push(out, token.V(vals[t.N]))
			default:
				x.push(out, t)
				if t.IsDone() {
					return
				}
			}
		}
	}
}

// stepALU combines two aligned value streams point-wise, fused over the
// whole stream (Definition 3.6).
func stepALU(si *StepIR) step {
	inA, inB := si.Ins[0], si.Ins[1]
	out := si.Outs[0]
	name := si.Label
	var op func(a, b float64) float64
	switch si.Op {
	case lang.Mul:
		op = func(a, b float64) float64 { return a * b }
	case lang.Add:
		op = func(a, b float64) float64 { return a + b }
	default:
		op = func(a, b float64) float64 { return a - b }
	}
	return func(x *exec) {
		ca, cb := x.cur(inA), x.cur(inB)
		a := ca.next()
		b := cb.next()
		for {
			dataA := a.IsVal() || a.IsEmpty()
			dataB := b.IsVal() || b.IsEmpty()
			switch {
			// An orphan zero (a scalar reduction of a structurally empty
			// group, e.g. a parallel lane that received no fibers) has no
			// counterpart on the other operand: discard it, like the
			// droppers and reducers do.
			case a.IsVal() && a.V == 0 && (b.IsStop() || b.IsDone()):
				a = ca.next()
				continue
			case b.IsVal() && b.V == 0 && (a.IsStop() || a.IsDone()):
				b = cb.next()
				continue
			case dataA && dataB:
				if a.IsEmpty() && b.IsEmpty() {
					x.push(out, token.N())
				} else {
					va, vb := 0.0, 0.0
					if a.IsVal() {
						va = a.V
					}
					if b.IsVal() {
						vb = b.V
					}
					x.push(out, token.V(op(va, vb)))
				}
			case a.IsStop() && b.IsStop() && a.StopLevel() == b.StopLevel():
				x.push(out, a)
			case a.IsDone() && b.IsDone():
				x.push(out, token.D())
				return
			default:
				fail("%s: misaligned operands %v vs %v", name, a, b)
			}
			a = ca.next()
			b = cb.next()
		}
	}
}

// stepCrdDrop lowers the coordinate dropper in either mode
// (Definition 3.9), with the same asymmetric stop rules as the cycle
// implementation.
func stepCrdDrop(si *StepIR) step {
	inOuter := si.Ins[0]
	outOuter := si.Outs[0]
	name := si.Label
	if si.DropVal {
		inVal := si.Ins[1]
		outVal := si.Outs[1]
		return func(x *exec) {
			co, cv := x.cur(inOuter), x.cur(inVal)
			ct := co.next()
			for {
				v := cv.next()
				switch {
				case ct.IsVal() && (v.IsVal() || v.IsEmpty()):
					if v.IsVal() && v.V != 0 {
						x.push(outOuter, ct)
						x.push(outVal, v)
					}
					ct = co.next()
				case ct.IsStop() && (v.IsVal() || v.IsEmpty()):
					if v.IsVal() && v.V != 0 {
						fail("%s: nonzero orphan value %v", name, v)
					}
					// discard the orphan zero; keep the stop pending
				case ct.IsStop() && v.IsStop() && ct.StopLevel() == v.StopLevel():
					x.push(outOuter, ct)
					x.push(outVal, v)
					ct = co.next()
				case ct.IsDone() && v.IsDone():
					x.push(outOuter, token.D())
					x.push(outVal, token.D())
					return
				default:
					fail("%s: misaligned %v vs %v", name, ct, v)
				}
			}
		}
	}
	inInner := si.Ins[1]
	outInner := si.Outs[1]
	return func(x *exec) {
		co, ci := x.cur(inOuter), x.cur(inInner)
		var pending token.Tok
		havePending := false
		emitted := false
		everEmitted := false
		held := -1
		for {
			t := ci.next()
			switch t.Kind {
			case token.Val:
				if held >= 0 && everEmitted { // flush the held stop
					x.push(outInner, token.S(held))
				}
				held = -1
				if !emitted {
					if !havePending {
						o := co.next()
						if !o.IsVal() {
							fail("%s: expected outer coordinate, got %v", name, o)
						}
						pending = o
					}
					x.push(outOuter, pending)
					havePending = false
					emitted = true
				}
				x.push(outInner, t)
				everEmitted = true
			case token.Stop:
				m := t.StopLevel()
				if !emitted && !havePending {
					o := co.next()
					switch {
					case o.IsVal():
						// dropped coordinate; for m >= 1 the outer stop
						// still follows
						if m >= 1 {
							os := co.next()
							if !os.IsStop() || os.StopLevel() != m-1 {
								fail("%s: outer misaligned %v vs inner %v", name, os, t)
							}
							x.push(outOuter, token.S(m-1))
						}
					case o.IsStop() && m >= 1 && o.StopLevel() == m-1:
						x.push(outOuter, token.S(m-1))
					default:
						fail("%s: outer misaligned %v vs inner stop %v", name, o, t)
					}
				} else {
					if havePending {
						havePending = false // dropped coordinate
					}
					if m >= 1 {
						os := co.next()
						if !os.IsStop() || os.StopLevel() != m-1 {
							fail("%s: outer misaligned %v vs inner %v", name, os, t)
						}
						x.push(outOuter, token.S(m-1))
					}
				}
				if m > held {
					held = m
				}
				emitted = false
				havePending = false
			case token.Done:
				if held >= 0 && everEmitted { // flush the held stop
					x.push(outInner, token.S(held))
				}
				held = -1
				if o := co.next(); !o.IsDone() {
					fail("%s: outer stream not done: %v", name, o)
				}
				x.push(outOuter, token.D())
				x.push(outInner, token.D())
				return
			}
		}
	}
}
