package comp_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sam/internal/bind"
	"sam/internal/comp"
	"sam/internal/custard"
	"sam/internal/fiber"
	"sam/internal/lang"
	"sam/internal/sim"
	"sam/internal/tensor"
)

// The compiled engine's correctness bar is bitwise COO equality against the
// event engine (tensor.IdenticalBits): lowering to merged loops may not
// change the output stream in any observable way, down to point order and
// explicit values. Inputs are quantized to small integers so reassociated
// float sums stay exact.

// randomInputs draws integer-exact inputs for a statement.
func randomInputs(rng *rand.Rand, e *lang.Einsum, dimOf func(v string) int) map[string]*tensor.COO {
	inputs := map[string]*tensor.COO{}
	for _, a := range e.Accesses() {
		if _, ok := inputs[a.Tensor]; ok {
			continue
		}
		if len(a.Idx) == 0 {
			s := tensor.NewCOO(a.Tensor)
			s.Append(float64(rng.Intn(5) + 1))
			inputs[a.Tensor] = s
			continue
		}
		ds := make([]int, len(a.Idx))
		total := 1
		for i, v := range a.Idx {
			ds[i] = dimOf(v)
			total *= ds[i]
		}
		t := tensor.UniformRandom(a.Tensor, rng, total/5+1, ds...)
		tensor.QuantizeInts(rng, 7, t)
		inputs[a.Tensor] = t
	}
	return inputs
}

// runDifferential compiles one (expr, formats, schedule) configuration at
// every requested (opt, par) point and demands the compiled engine's output
// be bitwise identical to the event engine's, with run-failure parity, and
// that no supported graph silently fell back to the event engine.
func runDifferential(t *testing.T, name, expr string, formats lang.Formats, sched lang.Schedule, lanes []int, inputs map[string]*tensor.COO) {
	t.Helper()
	e, err := lang.Parse(expr)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	for _, par := range lanes {
		for _, opt := range []int{0, 1} {
			s := sched
			s.Par = par
			s.Opt = opt
			g, err := custard.Compile(e, formats, s)
			if err != nil {
				if par > 1 {
					continue // kernel not parallelizable under this loop order
				}
				t.Fatalf("%s O%d: compile: %v", name, opt, err)
			}
			if err := sim.CheckEngine(sim.EngineComp, g); err != nil {
				t.Errorf("%s par%d O%d: CheckEngine(comp) rejected a supported graph: %v", name, par, opt, err)
				continue
			}
			ref, errRef := sim.Run(g, inputs, sim.Options{Engine: sim.EngineEvent})
			got, errGot := sim.Run(g, inputs, sim.Options{Engine: sim.EngineComp})
			if errRef != nil || errGot != nil {
				// A handful of exotic loop orders hit pre-existing lowering
				// limits; the compiled engine must not change whether a
				// graph runs.
				if (errRef == nil) != (errGot == nil) {
					t.Errorf("%s par%d O%d: run-failure parity broken: event err=%v, comp err=%v", name, par, opt, errRef, errGot)
				}
				continue
			}
			if got.Engine != sim.EngineComp {
				t.Errorf("%s par%d O%d: supported graph fell back to %q", name, par, opt, got.Engine)
			}
			if got.Cycles != 0 {
				t.Errorf("%s par%d O%d: comp reported %d cycles, want 0 (no cycle model)", name, par, opt, got.Cycles)
			}
			if err := tensor.IdenticalBits(ref.Output, got.Output); err != nil {
				t.Errorf("%s par%d O%d: comp output differs from event: %v", name, par, opt, err)
			}
			// Goroutine-vs-merged: the lane-goroutine executor and the
			// merged sequential loop are two execution strategies for one
			// lowered program; their outputs must be bit-identical to each
			// other and to the event engine.
			cp, err := comp.Compile(g)
			if err != nil {
				t.Errorf("%s par%d O%d: comp.Compile: %v", name, par, opt, err)
				continue
			}
			bound, err := bind.Operands(g, inputs)
			if err != nil {
				t.Fatalf("%s par%d O%d: bind: %v", name, par, opt, err)
			}
			dims, err := bind.OutputDims(g, inputs)
			if err != nil {
				t.Fatalf("%s par%d O%d: output dims: %v", name, par, opt, err)
			}
			laneOut, errLane := cp.Run(bound, dims)
			mergedOut, errMerged := cp.RunMerged(bound, dims)
			if (errLane == nil) != (errMerged == nil) {
				t.Errorf("%s par%d O%d: lane/merged failure parity broken: lane err=%v, merged err=%v", name, par, opt, errLane, errMerged)
				continue
			}
			if errLane != nil {
				continue
			}
			if err := tensor.IdenticalBits(mergedOut, laneOut); err != nil {
				t.Errorf("%s par%d O%d: goroutine execution differs from merged loop: %v", name, par, opt, err)
			}
			if err := tensor.IdenticalBits(ref.Output, laneOut); err != nil {
				t.Errorf("%s par%d O%d: goroutine execution differs from event: %v", name, par, opt, err)
			}
		}
	}
}

// TestCompDifferentialKernels is the fixed half of the battery: every paper
// kernel plus gallop, locator, format and deep-reduction shapes, across
// Opt ∈ {0, 1} and Par ∈ {1, 2, 4, 8}.
func TestCompDifferentialKernels(t *testing.T) {
	csr2 := lang.Formats{"B": lang.CSR(2)}
	dense1 := lang.Formats{"c": lang.Uniform(1, fiber.Dense)}
	llOut := lang.Formats{"X": lang.Uniform(2, fiber.LinkedList)}
	cases := []struct {
		name    string
		expr    string
		formats lang.Formats
		sched   lang.Schedule
	}{
		{"spmv", "x(i) = B(i,j) * c(j)", nil, lang.Schedule{}},
		{"spmv-csr", "x(i) = B(i,j) * c(j)", csr2, lang.Schedule{}},
		{"spmv-skip", "x(i) = B(i,j) * c(j)", nil, lang.Schedule{UseSkip: true}},
		{"spmv-locate", "x(i) = B(i,j) * c(j)", dense1, lang.Schedule{UseLocators: true}},
		{"spmspm-ikj", "X(i,j) = B(i,k) * C(k,j)", nil, lang.Schedule{LoopOrder: []string{"i", "k", "j"}}},
		{"spmspm-ijk", "X(i,j) = B(i,k) * C(k,j)", nil, lang.Schedule{LoopOrder: []string{"i", "j", "k"}}},
		{"spmspm-kij", "X(i,j) = B(i,k) * C(k,j)", nil, lang.Schedule{LoopOrder: []string{"k", "i", "j"}}},
		{"spmspm-skip", "X(i,j) = B(i,k) * C(k,j)", nil, lang.Schedule{LoopOrder: []string{"i", "j", "k"}, UseSkip: true}},
		{"spmspm-llout", "X(i,j) = B(i,k) * C(k,j)", llOut, lang.Schedule{LoopOrder: []string{"i", "k", "j"}}},
		{"sddmm", "X(i,j) = B(i,j) * C(i,k) * D(j,k)", nil, lang.Schedule{}},
		{"ttv", "X(i,j) = B(i,j,k) * c(k)", nil, lang.Schedule{}},
		{"ttm", "X(i,j,k) = B(i,j,l) * C(k,l)", nil, lang.Schedule{}},
		{"mttkrp", "X(i,j) = B(i,k,l) * C(j,k) * D(j,l)", nil, lang.Schedule{}},
		{"innerprod", "x = B(i,j,k) * C(i,j,k)", nil, lang.Schedule{}},
		{"residual", "x(i) = b(i) - C(i,j) * d(j)", nil, lang.Schedule{}},
		{"mattransmul", "x(i) = alpha * Bt(i,j) * c(j) + beta * d(i)", nil, lang.Schedule{}},
		{"mmadd", "X(i,j) = B(i,j) + C(i,j)", nil, lang.Schedule{}},
		{"plus3", "X(i,j) = B(i,j) + C(i,j) + D(i,j)", nil, lang.Schedule{}},
		{"hadamard-square", "X(i,j) = B(i,j) * B(i,j)", nil, lang.Schedule{}},
		// A reduction scheduled outside three kept variables exercises the
		// general n-dimensional reducer (n = 3), which only the cycle and
		// compiled engines implement.
		{"deep-reduce", "X(i,j,k) = B(i,j,k,l) * c(l)", nil, lang.Schedule{LoopOrder: []string{"l", "i", "j", "k"}}},
	}
	dims := map[string]int{"i": 24, "j": 20, "k": 14, "l": 10}
	rng := rand.New(rand.NewSource(41))
	for _, tc := range cases {
		e := lang.MustParse(tc.expr)
		inputs := randomInputs(rng, e, func(v string) int { return dims[v] })
		runDifferential(t, tc.name, tc.expr, tc.formats, tc.sched, []int{1, 2, 4, 8}, inputs)
	}
}

// TestCompDifferentialEmptyResults drives all-empty shapes: disjoint operand
// supports make every intersection empty, so whole output fibers vanish at
// every level — the shapes where writer/normalization behavior diverges
// first.
func TestCompDifferentialEmptyResults(t *testing.T) {
	cases := []struct {
		name  string
		expr  string
		order []string
	}{
		{"spmspm-ikj", "X(i,j) = B(i,k) * C(k,j)", []string{"i", "k", "j"}},
		{"sddmm", "X(i,j) = B(i,j) * C(i,k) * D(j,k)", nil},
		{"ttm", "X(i,j,k) = B(i,j,l) * C(k,l)", nil},
		{"mttkrp", "X(i,j) = B(i,k,l) * C(j,k) * D(j,l)", nil},
	}
	for _, tc := range cases {
		e := lang.MustParse(tc.expr)
		inputs := map[string]*tensor.COO{}
		for n, a := range e.Accesses() {
			ds := make([]int, len(a.Idx))
			crd := make([]int64, len(a.Idx))
			for i := range ds {
				ds[i] = 8
				crd[i] = int64(n % 2) // disjoint even/odd supports
			}
			tt := tensor.NewCOO(a.Tensor, ds...)
			tt.Append(float64(n+1), crd...)
			inputs[a.Tensor] = tt
		}
		runDifferential(t, tc.name+"-empty", tc.expr, nil, lang.Schedule{LoopOrder: tc.order}, []int{1, 4, 8}, inputs)
	}
}

// randomCase derives one fuzz configuration from a seed: an expression from
// the template pool, random dimensions, a random loop-order permutation, and
// random skip/opt toggles.
func randomCase(seed int64) (name, expr string, sched lang.Schedule, inputs map[string]*tensor.COO) {
	rng := rand.New(rand.NewSource(seed))
	pool := []string{
		"x(i) = B(i,j) * c(j)",
		"X(i,j) = B(i,k) * C(k,j)",
		"X(i,j) = B(i,j) * C(i,j)",
		"X(i,j) = B(i,j) * B(i,j)",
		"X(i,j) = B(i,j) + C(i,j) + B(i,j)",
		"x(i) = B(i,j) * c(j) * c(j)",
		"X(i,j) = B(i,j,k) * c(k)",
		"x = B(i,j) * C(i,j)",
		"x(i) = b(i) + C(i,j) * d(j)",
		"X(i,j) = B(i,j) * C(i,k) * D(j,k)",
		"X(i,j) = B(i,j) + B(i,j) * C(i,j)",
		"x(i) = alpha * B(i,j) * c(j) + alpha * d(i)",
		"X(i,j,k) = B(i,j,k,l) * c(l)",
	}
	expr = pool[rng.Intn(len(pool))]
	e := lang.MustParse(expr)
	vars := e.AllVars()
	order := append([]string(nil), vars...)
	rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
	sched = lang.Schedule{LoopOrder: order}
	if rng.Intn(3) == 0 {
		sched.UseSkip = true
	}
	dims := map[string]int{}
	for _, v := range vars {
		dims[v] = 4 + rng.Intn(9)
	}
	inputs = randomInputs(rng, e, func(v string) int { return dims[v] })
	name = fmt.Sprintf("seed%d:%s:%v", seed, expr, order)
	return name, expr, sched, inputs
}

// TestCompDifferentialRandom is the randomized half of the battery: 60
// seeded random (expression, schedule, data) draws, each checked across
// Opt ∈ {0,1} and two lane counts like the fixed kernels.
func TestCompDifferentialRandom(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 12
	}
	for seed := int64(0); seed < int64(n); seed++ {
		name, expr, sched, inputs := randomCase(seed)
		runDifferential(t, name, expr, nil, sched, []int{1, rand.New(rand.NewSource(seed)).Intn(3) + 2}, inputs)
	}
}

// FuzzCompDifferential lets go fuzz explore the configuration space beyond
// the seeded draws: the fuzzer picks the case seed, a lane count and the
// optimization level, and every crash or output mismatch is a genuine
// compiled-engine bug. Run with go test -fuzz=FuzzCompDifferential
// ./internal/comp; the seed corpus runs as a regular test.
func FuzzCompDifferential(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(0))
	f.Add(int64(7), uint8(2), uint8(1))
	f.Add(int64(23), uint8(4), uint8(0))
	f.Add(int64(77), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, lanes, optLevel uint8) {
		par := 1 << (lanes % 4) // 1, 2, 4 or 8 lanes
		name, expr, sched, inputs := randomCase(seed)
		e := lang.MustParse(expr)
		s := sched
		s.Par = par
		s.Opt = int(optLevel % 2)
		g, err := custard.Compile(e, nil, s)
		if err != nil {
			return // not parallelizable under this order; nothing to compare
		}
		ref, err := sim.Run(g, inputs, sim.Options{Engine: sim.EngineEvent})
		if err != nil {
			t.Skipf("%s: event run: %v", name, err)
		}
		got, err := sim.Run(g, inputs, sim.Options{Engine: sim.EngineComp})
		if err != nil {
			t.Fatalf("%s par%d O%d: comp run failed where event ran: %v", name, par, s.Opt, err)
		}
		if got.Engine != sim.EngineComp {
			t.Fatalf("%s par%d O%d: supported graph fell back to %q", name, par, s.Opt, got.Engine)
		}
		if err := tensor.IdenticalBits(ref.Output, got.Output); err != nil {
			t.Fatalf("%s par%d O%d: outputs differ: %v", name, par, s.Opt, err)
		}
	})
}
