// Package comp is the compiled co-iteration engine: it lowers a SAM
// dataflow graph once into a tree of Go closures that execute the graph
// directly, skipping the token queues and per-cycle scheduling the
// cycle-accurate engines pay on every edge.
//
// Lowering walks the graph in topological order and emits one closure per
// block, wired through flat stream buffers instead of queues. Each closure
// is a merged loop over its operands' full streams: level scanners become
// cursor walks over fiber.Tensor storage, intersections and unions become
// two-pointer (or, for gallop blocks, coordinate-skipping galloping) merges,
// and ALUs, reducers, droppers and writers run as tight loops fused over
// whole fibers at a time. The token-level semantics of every block are
// preserved exactly — the per-edge token sequences are identical to the
// cycle engines' — so outputs are bit-identical, which the differential
// battery in this package and the engine registration in internal/sim
// enforce across kernels, schedules, lane counts and fuzzed inputs.
//
// Supported blocks are everything except the bitvector pipeline (bitvector
// scanners, intersecters, vector ALUs and writers stay on the cycle
// engines); Check reports support up front so sim's comp engine can fall
// back to the event engine instead of failing. Like internal/flow, the
// compiled engine computes functional results only: no cycle counts, no
// stream statistics.
package comp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sam/internal/bind"
	"sam/internal/fiber"
	"sam/internal/graph"
	"sam/internal/tensor"
	"sam/internal/token"
)

// violation aborts execution on a stream protocol violation; Run recovers it
// into an error. A violation in this engine is a lowering bug (the cycle
// engines accept the same graphs), so it surfaces instead of falling back.
type violation struct{ err error }

func fail(format string, args ...any) {
	panic(violation{fmt.Errorf("comp: %s", fmt.Sprintf(format, args...))})
}

// step executes one lowered block against the run's stream buffers.
type step func(x *exec)

// portKey names one port of one node.
type portKey struct {
	node int
	port string
}

// writerRec records one level writer discovered at lowering time: assembly
// reads its input stream directly instead of running a closure.
type writerRec struct {
	node *graph.Node
	slot int // input stream slot
}

// Program is a graph lowered to closures: its structure is immutable after
// Compile and it is safe for concurrent Run calls — each run checks a
// reusable RunCtx out of the program's context pool (or the caller holds
// one explicitly via NewCtx/RunPooled).
type Program struct {
	g     *graph.Graph
	steps []step
	nSlot int

	crdWr  map[int]writerRec // output level -> coordinate writer
	valsWr *writerRec

	// plan is the lane-parallel execution plan, nil for sequential graphs
	// (see lanes.go).
	plan *execPlan

	// perm maps output dimension -> graph iteration-order dimension, the
	// permute from the scheduled loop order to the declared left-hand-side
	// order; idPerm marks the identity (no output sort needed). permErr is
	// surfaced at assembly time to keep failure parity with the other
	// engines.
	perm    []int
	idPerm  bool
	permErr error

	// hints holds per-slot stream-length high-water marks from earlier runs,
	// so repeated runs (the serving pattern) preallocate their buffers and
	// skip append growth. Raised monotonically via compare-and-swap; a
	// stale read only costs one regrowth.
	hints []atomic.Int64

	// pool recycles RunCtxs across Run calls; a warm context makes the run
	// core allocation-free.
	pool sync.Pool
}

// Check reports whether the compiled engine can lower the graph. Only the
// bitvector pipeline is outside its block set; graphs using it run on the
// cycle engines (sim's comp engine falls back to the event engine).
func Check(g *graph.Graph) error {
	for _, n := range g.Nodes {
		switch n.Kind {
		case graph.BVScanner, graph.BVIntersect, graph.VecLoad, graph.VecALU,
			graph.BVExpand, graph.BVConvert, graph.BVWriter, graph.VecValsWriter:
			return fmt.Errorf("comp: bitvector block %q needs a cycle engine", n.Label)
		case graph.Root, graph.Scanner, graph.Repeat, graph.Intersect, graph.Union,
			graph.GallopIntersect, graph.Locate, graph.Array, graph.ALU, graph.Reduce,
			graph.CrdDrop, graph.CrdWriter, graph.ValsWriter,
			graph.Parallelize, graph.Serialize, graph.SerializePair, graph.LaneReduce:
		default:
			return fmt.Errorf("comp: block kind %v not lowerable", n.Kind)
		}
	}
	return nil
}

// Compile lowers a graph into a Program. It fails for graphs outside the
// supported block set (see Check) and for structurally broken graphs.
func Compile(g *graph.Graph) (*Program, error) {
	if err := Check(g); err != nil {
		return nil, err
	}
	order, err := topoOrder(g)
	if err != nil {
		return nil, err
	}
	p := &Program{g: g, crdWr: map[int]writerRec{}}

	// One stream buffer per driven output port; fan-out consumers read the
	// same buffer. Undriven diagnostic ports write to slot -1 (discarded).
	outSlot := map[portKey]int{}
	inSlot := map[portKey]int{}
	for _, e := range g.Edges {
		k := portKey{e.From, e.FromPort}
		s, ok := outSlot[k]
		if !ok {
			s = p.nSlot
			p.nSlot++
			outSlot[k] = s
		}
		inSlot[portKey{e.To, e.ToPort}] = s
	}

	c := &lowerer{p: p, outSlot: outSlot, inSlot: inSlot}
	var infos []stepInfo
	for _, n := range order {
		c.curIns, c.curOuts = nil, nil
		before := len(p.steps)
		if err := c.lower(n); err != nil {
			return nil, err
		}
		// Every lowered block contributes at most one step; writers only
		// record their input slot.
		if len(p.steps) > before {
			infos = append(infos, stepInfo{node: n, step: p.steps[before], ins: c.curIns, outs: c.curOuts})
		}
	}
	if p.valsWr == nil {
		return nil, fmt.Errorf("comp: graph %q has no value writer", g.Name)
	}
	p.hints = make([]atomic.Int64, p.nSlot)
	p.plan = buildPlan(p.nSlot, infos, p.crdWr, p.valsWr)

	// Precompute the output permutation once; a missing variable surfaces
	// at assembly time, after stream validation, like the other engines.
	nOut := len(g.OutputVars)
	p.perm = make([]int, nOut)
	p.idPerm = true
	for i, v := range g.LHSVars {
		found := false
		for j, u := range g.OutputVars {
			if u == v {
				p.perm[i] = j
				found = true
			}
		}
		if !found {
			p.permErr = fmt.Errorf("comp: output variable %q missing from graph metadata", v)
			break
		}
		if p.perm[i] != i {
			p.idPerm = false
		}
	}
	return p, nil
}

// Graph returns the lowered graph.
func (p *Program) Graph() *graph.Graph { return p.g }

// Parallel reports whether the program compiled to a lane-parallel plan:
// Run will execute its fork region on per-lane goroutines. Sequential
// programs (Par <= 1, or shapes the lane planner rejects) return false.
func (p *Program) Parallel() bool { return p.plan != nil }

// lowerer carries the per-compile wiring state. curIns/curOuts accumulate
// the slots resolved while lowering the current node, in call order, so
// Compile can record each step's dataflow for the lane planner; curOuts
// keeps -1 entries so a Parallelize step's outs index its lane numbers.
type lowerer struct {
	p       *Program
	outSlot map[portKey]int
	inSlot  map[portKey]int
	curIns  []int
	curOuts []int
}

// in resolves the stream slot feeding an input port.
func (c *lowerer) in(n *graph.Node, port string) (int, error) {
	s, ok := c.inSlot[portKey{n.ID, port}]
	if !ok {
		return 0, fmt.Errorf("comp: node %q input port %q unconnected", n.Label, port)
	}
	c.curIns = append(c.curIns, s)
	return s, nil
}

// ins resolves a numbered port family, e.g. crd0..crdN.
func (c *lowerer) ins(n *graph.Node, prefix string, count int) ([]int, error) {
	slots := make([]int, count)
	for i := range slots {
		var err error
		if slots[i], err = c.in(n, fmt.Sprintf("%s%d", prefix, i)); err != nil {
			return nil, err
		}
	}
	return slots, nil
}

// out resolves an output port's slot; undriven ports discard.
func (c *lowerer) out(n *graph.Node, port string) int {
	s := -1
	if t, ok := c.outSlot[portKey{n.ID, port}]; ok {
		s = t
	}
	c.curOuts = append(c.curOuts, s)
	return s
}

// outs resolves a numbered output port family.
func (c *lowerer) outs(n *graph.Node, prefix string, count int) []int {
	slots := make([]int, count)
	for i := range slots {
		slots[i] = c.out(n, fmt.Sprintf("%s%d", prefix, i))
	}
	return slots
}

// add appends one lowered closure.
func (c *lowerer) add(s step) { c.p.steps = append(c.p.steps, s) }

// exec is the view one region of a run executes against: the run's stream
// buffers indexed by slot, the bound operand storage and output dimensions,
// and a private arena for cursor/scratch checkouts. Lane goroutines hold
// distinct exec views sharing one stream table — they write disjoint slots,
// so the element writes never race — with per-lane arenas.
type exec struct {
	streams []token.Stream
	bound   map[string]*fiber.Tensor
	dims    []int
	a       *arena
}

// push appends a token to a stream buffer; slot -1 discards.
func (x *exec) push(slot int, t token.Tok) {
	if slot >= 0 {
		x.streams[slot] = append(x.streams[slot], t)
	}
}

// cur opens a read cursor over a stream buffer, checked out of the arena.
func (x *exec) cur(slot int) *cursor { return x.a.cursor(x.streams[slot]) }

// curs opens cursors over a slot family.
func (x *exec) curs(slots []int) []*cursor { return x.a.cursors(x, slots) }

// level fetches a bound operand's storage level.
func (x *exec) level(label, operand string, lvl int) fiber.Level {
	t, ok := x.bound[operand]
	if !ok {
		fail("node %q references unbound operand %q", label, operand)
	}
	if lvl >= len(t.Levels) {
		fail("node %q references level %d of order-%d operand %q", label, lvl, len(t.Levels), operand)
	}
	return t.Levels[lvl]
}

// vals fetches a bound operand's value array.
func (x *exec) vals(label, operand string) []float64 {
	t, ok := x.bound[operand]
	if !ok {
		fail("node %q references unbound operand %q", label, operand)
	}
	return t.Vals
}

// cursor reads a materialized stream with one-token lookahead, the batch
// analogue of a queue's peek/pop.
type cursor struct {
	s token.Stream
	i int
}

func (c *cursor) peek() token.Tok {
	if c.i >= len(c.s) {
		fail("stream ended before done token")
	}
	return c.s[c.i]
}

func (c *cursor) next() token.Tok {
	t := c.peek()
	c.i++
	return t
}

// RunGraph compiles and runs a graph in one shot.
func RunGraph(g *graph.Graph, inputs map[string]*tensor.COO) (*tensor.COO, error) {
	p, err := Compile(g)
	if err != nil {
		return nil, err
	}
	bound, err := bind.Operands(g, inputs)
	if err != nil {
		return nil, err
	}
	dims, err := bind.OutputDims(g, inputs)
	if err != nil {
		return nil, err
	}
	return p.Run(bound, dims)
}

// topoOrder sorts nodes so producers precede consumers.
func topoOrder(g *graph.Graph) ([]*graph.Node, error) {
	indeg := make([]int, len(g.Nodes))
	succ := make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	var out []*graph.Node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, g.Nodes[n])
		for _, s := range succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(g.Nodes) {
		return nil, fmt.Errorf("comp: graph has a cycle")
	}
	return out, nil
}
