// Package comp is the compiled co-iteration engine: it lowers a SAM
// dataflow graph once into a tree of Go closures that execute the graph
// directly, skipping the token queues and per-cycle scheduling the
// cycle-accurate engines pay on every edge.
//
// Lowering is split into two halves. Lower walks the graph in topological
// order and flattens it into a serializable IR: one StepIR per block with
// its stream-slot wiring and block parameters, plus the writer table and
// the output metadata (ir.go). Materialize binds each StepIR to its merged-
// loop closure through an opcode dispatch and rebuilds the derived state
// (lane plan, output permutation). Compile is Lower followed by
// Materialize; internal/prog serializes the IR between the two halves, so
// the closure engine and the portable-artifact interpreter share one
// lowering and execute the exact same closure bodies.
//
// Each closure is a merged loop over its operands' full streams: level
// scanners become cursor walks over fiber.Tensor storage, intersections and
// unions become two-pointer (or, for gallop blocks, coordinate-skipping
// galloping) merges, and ALUs, reducers, droppers and writers run as tight
// loops fused over whole fibers at a time. The token-level semantics of
// every block are preserved exactly — the per-edge token sequences are
// identical to the cycle engines' — so outputs are bit-identical, which the
// differential battery in this package and the engine registration in
// internal/sim enforce across kernels, schedules, lane counts and fuzzed
// inputs.
//
// Supported blocks are everything except the bitvector pipeline (bitvector
// scanners, intersecters, vector ALUs and writers stay on the cycle
// engines); Check reports support up front so sim's comp engine can fall
// back to the event engine instead of failing. Like internal/flow, the
// compiled engine computes functional results only: no cycle counts, no
// stream statistics.
package comp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sam/internal/bind"
	"sam/internal/fiber"
	"sam/internal/graph"
	"sam/internal/tensor"
	"sam/internal/token"
)

// violation aborts execution on a stream protocol violation; Run recovers it
// into an error. A violation in this engine is a lowering bug (the cycle
// engines accept the same graphs) or a corrupt artifact, so it surfaces
// instead of falling back.
type violation struct{ err error }

func fail(format string, args ...any) {
	panic(violation{fmt.Errorf("comp: %s", fmt.Sprintf(format, args...))})
}

// step executes one lowered block against the run's stream buffers.
type step func(x *exec)

// portKey names one port of one node.
type portKey struct {
	node int
	port string
}

// writerRec is the materialized form of a WriterIR: assembly reads the
// writer's input stream directly instead of running a closure.
type writerRec struct {
	label string
	slot  int // input stream slot
}

// Program is a lowered IR bound to closures: its structure is immutable
// after Compile/Materialize and it is safe for concurrent Run calls — each
// run checks a reusable RunCtx out of the program's context pool (or the
// caller holds one explicitly via NewCtx/RunPooled).
type Program struct {
	// g is the source graph when the program came from Compile, nil when it
	// was materialized from a decoded artifact; execution reads only ir.
	g     *graph.Graph
	ir    *IR
	steps []step
	nSlot int

	crdWr  map[int]writerRec // output level -> coordinate writer
	valsWr *writerRec

	// plan is the lane-parallel execution plan, nil for sequential graphs
	// (see lanes.go).
	plan *execPlan

	// perm maps output dimension -> graph iteration-order dimension, the
	// permute from the scheduled loop order to the declared left-hand-side
	// order; idPerm marks the identity (no output sort needed). permErr is
	// surfaced at assembly time to keep failure parity with the other
	// engines.
	perm    []int
	idPerm  bool
	permErr error

	// hints holds per-slot stream-length high-water marks from earlier runs,
	// so repeated runs (the serving pattern) preallocate their buffers and
	// skip append growth. Raised monotonically via compare-and-swap; a
	// stale read only costs one regrowth.
	hints []atomic.Int64

	// pool recycles RunCtxs across Run calls; a warm context makes the run
	// core allocation-free.
	pool sync.Pool
}

// Check reports whether the compiled engine can lower the graph. Only the
// bitvector pipeline is outside its block set; graphs using it run on the
// cycle engines (sim's comp engine falls back to the event engine).
func Check(g *graph.Graph) error {
	for _, n := range g.Nodes {
		switch n.Kind {
		case graph.BVScanner, graph.BVIntersect, graph.VecLoad, graph.VecALU,
			graph.BVExpand, graph.BVConvert, graph.BVWriter, graph.VecValsWriter:
			return fmt.Errorf("comp: bitvector block %q needs a cycle engine", n.Label)
		case graph.Root, graph.Scanner, graph.Repeat, graph.Intersect, graph.Union,
			graph.GallopIntersect, graph.Locate, graph.Array, graph.ALU, graph.Reduce,
			graph.CrdDrop, graph.CrdWriter, graph.ValsWriter,
			graph.Parallelize, graph.Serialize, graph.SerializePair, graph.LaneReduce:
		default:
			return fmt.Errorf("comp: block kind %v not lowerable", n.Kind)
		}
	}
	return nil
}

// Compile lowers a graph into a Program: Lower to the flat IR, Materialize
// back to closures. It fails for graphs outside the supported block set
// (see Check) and for structurally broken graphs.
func Compile(g *graph.Graph) (*Program, error) {
	ir, err := Lower(g)
	if err != nil {
		return nil, err
	}
	p, err := Materialize(ir)
	if err != nil {
		return nil, err
	}
	p.g = g
	return p, nil
}

// Graph returns the source graph, or nil when the program was materialized
// from a decoded artifact (execution never needs it; see IR).
func (p *Program) Graph() *graph.Graph { return p.g }

// IR returns the program's lowered intermediate form, the unit
// internal/prog serializes.
func (p *Program) IR() *IR { return p.ir }

// Parallel reports whether the program compiled to a lane-parallel plan:
// Run will execute its fork region on per-lane goroutines. Sequential
// programs (Par <= 1, or shapes the lane planner rejects) return false.
func (p *Program) Parallel() bool { return p.plan != nil }

// exec is the view one region of a run executes against: the run's stream
// buffers indexed by slot, the bound operand storage and output dimensions,
// and a private arena for cursor/scratch checkouts. Lane goroutines hold
// distinct exec views sharing one stream table — they write disjoint slots,
// so the element writes never race — with per-lane arenas.
type exec struct {
	streams []token.Stream
	bound   map[string]*fiber.Tensor
	dims    []int
	a       *arena
}

// push appends a token to a stream buffer; slot -1 discards.
func (x *exec) push(slot int, t token.Tok) {
	if slot >= 0 {
		x.streams[slot] = append(x.streams[slot], t)
	}
}

// cur opens a read cursor over a stream buffer, checked out of the arena.
func (x *exec) cur(slot int) *cursor { return x.a.cursor(x.streams[slot]) }

// curs opens cursors over a slot family.
func (x *exec) curs(slots []int) []*cursor { return x.a.cursors(x, slots) }

// level fetches a bound operand's storage level.
func (x *exec) level(label, operand string, lvl int) fiber.Level {
	t, ok := x.bound[operand]
	if !ok {
		fail("node %q references unbound operand %q", label, operand)
	}
	if lvl >= len(t.Levels) {
		fail("node %q references level %d of order-%d operand %q", label, lvl, len(t.Levels), operand)
	}
	return t.Levels[lvl]
}

// vals fetches a bound operand's value array.
func (x *exec) vals(label, operand string) []float64 {
	t, ok := x.bound[operand]
	if !ok {
		fail("node %q references unbound operand %q", label, operand)
	}
	return t.Vals
}

// cursor reads a materialized stream with one-token lookahead, the batch
// analogue of a queue's peek/pop.
type cursor struct {
	s token.Stream
	i int
}

func (c *cursor) peek() token.Tok {
	if c.i >= len(c.s) {
		fail("stream ended before done token")
	}
	return c.s[c.i]
}

func (c *cursor) next() token.Tok {
	t := c.peek()
	c.i++
	return t
}

// RunGraph compiles and runs a graph in one shot.
func RunGraph(g *graph.Graph, inputs map[string]*tensor.COO) (*tensor.COO, error) {
	p, err := Compile(g)
	if err != nil {
		return nil, err
	}
	bound, err := bind.Operands(g, inputs)
	if err != nil {
		return nil, err
	}
	dims, err := bind.OutputDims(g, inputs)
	if err != nil {
		return nil, err
	}
	return p.Run(bound, dims)
}

// topoOrder sorts nodes so producers precede consumers. Kahn's queue pops
// in insertion order, so the order — and everything derived from it, the IR
// step list included — is deterministic for a given graph.
func topoOrder(g *graph.Graph) ([]*graph.Node, error) {
	indeg := make([]int, len(g.Nodes))
	succ := make([][]int, len(g.Nodes))
	for _, e := range g.Edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	var out []*graph.Node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, g.Nodes[n])
		for _, s := range succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(g.Nodes) {
		return nil, fmt.Errorf("comp: graph has a cycle")
	}
	return out, nil
}
