package comp_test

import (
	"sync"
	"testing"

	"sam/internal/lang"
	"sam/internal/tensor"
)

// TestConcurrentRunSharedPool runs one compiled lane-parallel program from
// many goroutines at once, all drawing run contexts from the program's one
// sync.Pool while each run forks its own lane goroutines. Under -race this
// is the comp-level data-race gate for pooled + lane execution; it also
// checks every concurrent result stays bit-identical to a lone run.
func TestConcurrentRunSharedPool(t *testing.T) {
	for _, par := range []int{1, 4} {
		sched := lang.Schedule{LoopOrder: []string{"i", "k", "j"}, Par: par}
		cp, bound, dims := compileCase(t, "X(i,j) = B(i,k) * C(k,j)", sched, 29)
		if got, want := cp.Parallel(), par > 1; got != want {
			t.Fatalf("par%d: Parallel() = %v, want %v", par, got, want)
		}
		want, err := cp.Run(bound, dims)
		if err != nil {
			t.Fatal(err)
		}
		const goroutines, iters = 8, 6
		errs := make([]error, goroutines)
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for k := 0; k < iters; k++ {
					got, err := cp.Run(bound, dims)
					if err == nil {
						err = tensor.IdenticalBits(want, got)
					}
					if err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("par%d goroutine %d: %v", par, i, err)
			}
		}
	}
}
